//! Routing-table computation.

use crate::{Topology, TopologyError};
use std::collections::VecDeque;

/// Routing algorithms.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RouteAlgorithm {
    /// Breadth-first shortest path with deterministic tie-breaking
    /// (lowest next-switch index wins). Minimal, but may form channel
    /// cycles on cyclic topologies — check with
    /// [`Topology::deadlock_report`].
    ShortestPath,
    /// Dimension-order (X then Y) routing for a row-major mesh built by
    /// [`Topology::mesh`]. Deadlock-free by construction.
    XyMesh {
        /// Mesh width.
        width: usize,
        /// Mesh height.
        height: usize,
    },
    /// Up*/down* routing on a BFS spanning tree rooted at switch 0:
    /// routes climb toward the root ("up", to lower BFS level) zero or
    /// more hops, then descend ("down") — never down-then-up, which makes
    /// the channel dependency graph acyclic on any connected topology.
    UpDown,
}

/// Computed per-switch routing tables: `tables[switch][dst_node]` is the
/// output port, if reachable.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SwitchTables {
    tables: Vec<Vec<Option<u8>>>,
}

impl SwitchTables {
    /// Output port on `switch` towards destination `node`.
    pub fn port(&self, switch: usize, node: u16) -> Option<u8> {
        self.tables
            .get(switch)
            .and_then(|t| t.get(node as usize))
            .copied()
            .flatten()
    }

    /// The raw table of one switch (indexed by destination node).
    pub fn switch_table(&self, switch: usize) -> &[Option<u8>] {
        &self.tables[switch]
    }

    /// Number of switches covered.
    pub fn num_switches(&self) -> usize {
        self.tables.len()
    }
}

impl Topology {
    /// Computes per-switch routing tables with the chosen algorithm.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::Disconnected`] when some destination is
    /// unreachable from some switch, or
    /// [`TopologyError::AlgorithmMismatch`] when the algorithm does not
    /// apply (e.g. XY on a non-mesh).
    pub fn compute_routes(&self, algo: RouteAlgorithm) -> Result<SwitchTables, TopologyError> {
        match algo {
            RouteAlgorithm::ShortestPath => self.routes_bfs(None),
            RouteAlgorithm::UpDown => {
                let levels = self.bfs_levels(0)?;
                self.routes_bfs(Some(&levels))
            }
            RouteAlgorithm::XyMesh { width, height } => self.routes_xy(width, height),
        }
    }

    /// BFS levels from `root` (hop distance), erroring on disconnection.
    fn bfs_levels(&self, root: usize) -> Result<Vec<usize>, TopologyError> {
        let adj = self.adjacency();
        let mut level = vec![usize::MAX; self.num_switches];
        level[root] = 0;
        let mut q = VecDeque::from([root]);
        while let Some(s) = q.pop_front() {
            let mut nbrs: Vec<usize> = adj[s].iter().map(|&(_, t)| t).collect();
            nbrs.sort_unstable();
            for t in nbrs {
                if level[t] == usize::MAX {
                    level[t] = level[s] + 1;
                    q.push_back(t);
                }
            }
        }
        if let Some(to) = level.iter().position(|&l| l == usize::MAX) {
            return Err(TopologyError::Disconnected { from: root, to });
        }
        Ok(level)
    }

    /// Reverse-BFS routing towards each destination. With `levels`
    /// provided, hops are restricted to the up*/down* rule relative to the
    /// spanning-tree levels.
    fn routes_bfs(&self, levels: Option<&Vec<usize>>) -> Result<SwitchTables, TopologyError> {
        // Reverse adjacency: incoming edges per switch.
        let mut radj: Vec<Vec<(usize, usize)>> = vec![Vec::new(); self.num_switches];
        for (i, e) in self.edges.iter().enumerate() {
            radj[e.to].push((i, e.from));
        }
        let num_nodes = self
            .attachments
            .iter()
            .map(|a| a.node as usize + 1)
            .max()
            .unwrap_or(0);
        let mut tables = vec![vec![None; num_nodes]; self.num_switches];
        for a in &self.attachments {
            // BFS outward from the destination switch along reverse edges.
            // phase: 0 = still descending when walked forward (down-phase
            // near destination), 1 = up-phase allowed. For up*/down*:
            // a forward route must be up...up, down...down. Walking
            // backwards from the destination we first traverse "down"
            // edges (from higher level to lower... i.e. forward edge goes
            // parent→child direction), then "up" edges.
            let mut dist = vec![[usize::MAX; 2]; self.num_switches];
            let mut q: VecDeque<(usize, usize)> = VecDeque::new();
            dist[a.switch][0] = 0;
            q.push_back((a.switch, 0));
            tables[a.switch][a.node as usize] = Some(a.out_port);
            while let Some((s, phase)) = q.pop_front() {
                let mut preds: Vec<(usize, usize)> = radj[s].clone();
                preds.sort_by_key(|&(_, from)| from);
                for (edge_idx, from) in preds {
                    let e = &self.edges[edge_idx];
                    // Determine the forward direction class of this edge
                    // under up*/down*: "up" = toward lower level.
                    let allowed_phases: &[usize] = match levels {
                        None => &[0],
                        Some(lv) => {
                            let up = lv[e.to] < lv[e.from];
                            if up {
                                // Forward "up" edge: only usable before any
                                // down edge, i.e. backward walk must be in
                                // phase 1 (or entering it).
                                &[1]
                            } else {
                                // Forward "down" edge: backward phase 0
                                // stays 0; from phase 1 it is illegal
                                // (down-then-up forward).
                                &[0]
                            }
                        }
                    };
                    for &p_edge in allowed_phases {
                        // Backward walk: current phase must be <= edge
                        // phase (once we've walked an up edge backwards,
                        // we may continue with up edges only).
                        let next_phase = p_edge.max(phase);
                        if next_phase < phase {
                            continue;
                        }
                        if levels.is_some() && phase == 1 && p_edge == 0 {
                            continue; // down edge after up edge (backward) is illegal
                        }
                        if dist[from][next_phase] != usize::MAX {
                            continue;
                        }
                        dist[from][next_phase] = dist[s][phase] + 1;
                        // First writer wins → BFS shortest, deterministic.
                        if tables[from][a.node as usize].is_none() {
                            tables[from][a.node as usize] = Some(e.from_port);
                        }
                        q.push_back((from, next_phase));
                    }
                }
            }
            // Connectivity check for this destination.
            if let Some(s) = (0..self.num_switches)
                .find(|&s| dist[s][0] == usize::MAX && dist[s][1] == usize::MAX)
            {
                return Err(TopologyError::Disconnected {
                    from: s,
                    to: a.switch,
                });
            }
        }
        Ok(SwitchTables { tables })
    }

    /// Dimension-order routing for a row-major mesh (as built by
    /// [`Topology::mesh`]).
    fn routes_xy(&self, width: usize, height: usize) -> Result<SwitchTables, TopologyError> {
        if width * height != self.num_switches {
            return Err(TopologyError::AlgorithmMismatch {
                reason: format!(
                    "mesh {}x{} has {} switches, topology has {}",
                    width,
                    height,
                    width * height,
                    self.num_switches
                ),
            });
        }
        let num_nodes = self
            .attachments
            .iter()
            .map(|a| a.node as usize + 1)
            .max()
            .unwrap_or(0);
        // Map (from, to) switch pairs to output ports.
        let port_towards = |from: usize, to: usize| -> Option<u8> {
            self.edges
                .iter()
                .find(|e| e.from == from && e.to == to)
                .map(|e| e.from_port)
        };
        let mut tables = vec![vec![None; num_nodes]; self.num_switches];
        for a in &self.attachments {
            let (dx, dy) = (a.switch % width, a.switch / width);
            #[allow(clippy::needless_range_loop)] // s is also arithmetic, not just an index
            for s in 0..self.num_switches {
                let (sx, sy) = (s % width, s / width);
                let entry = if s == a.switch {
                    Some(a.out_port)
                } else if sx != dx {
                    // X first
                    let nxt = if dx > sx { s + 1 } else { s - 1 };
                    port_towards(s, nxt)
                } else {
                    let nxt = if dy > sy { s + width } else { s - width };
                    port_towards(s, nxt)
                };
                let port = entry.ok_or_else(|| TopologyError::AlgorithmMismatch {
                    reason: format!("missing mesh link at switch {s}"),
                })?;
                tables[s][a.node as usize] = Some(port);
            }
        }
        Ok(SwitchTables { tables })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RouteAlgorithm as RA;

    /// Walks a route from `start` switch to destination node, returning
    /// the switch sequence (panics after too many hops → routing loop).
    fn walk(topo: &Topology, tables: &SwitchTables, start: usize, node: u16) -> Vec<usize> {
        let dst_attach = topo.attachment_of(node).unwrap();
        let mut path = vec![start];
        let mut s = start;
        for _ in 0..100 {
            let port = tables.port(s, node).expect("route exists");
            if s == dst_attach.switch && port == dst_attach.out_port {
                return path;
            }
            let edge = topo
                .edges()
                .iter()
                .find(|e| e.from == s && e.from_port == port)
                .expect("port maps to an edge");
            s = edge.to;
            path.push(s);
        }
        panic!("routing loop from {start} to node {node}: {path:?}");
    }

    #[test]
    fn shortest_path_on_mesh_is_minimal() {
        let t = Topology::mesh(3, 3);
        let tables = t.compute_routes(RA::ShortestPath).unwrap();
        // corner (sw 0) to opposite corner (node 8 on sw 8): 4 hops
        let path = walk(&t, &tables, 0, 8);
        assert_eq!(path.len(), 5);
    }

    #[test]
    fn xy_routes_x_first() {
        let t = Topology::mesh(3, 3);
        let tables = t
            .compute_routes(RA::XyMesh {
                width: 3,
                height: 3,
            })
            .unwrap();
        let path = walk(&t, &tables, 0, 8);
        assert_eq!(path, vec![0, 1, 2, 5, 8], "X first, then Y");
    }

    #[test]
    fn all_pairs_reach_destination_on_mesh() {
        let t = Topology::mesh(3, 2);
        for algo in [
            RA::ShortestPath,
            RA::XyMesh {
                width: 3,
                height: 2,
            },
            RA::UpDown,
        ] {
            let tables = t.compute_routes(algo).unwrap();
            for start in 0..t.num_switches() {
                for node in 0..6u16 {
                    let path = walk(&t, &tables, start, node);
                    assert!(!path.is_empty());
                }
            }
        }
    }

    #[test]
    fn ring_routes_follow_direction() {
        let t = Topology::ring(4);
        let tables = t.compute_routes(RA::ShortestPath).unwrap();
        // Unidirectional ring: 3 → 0 wraps via the single direction
        let path = walk(&t, &tables, 3, 0);
        assert_eq!(path, vec![3, 0]);
        let path = walk(&t, &tables, 0, 3);
        assert_eq!(path, vec![0, 1, 2, 3]);
    }

    #[test]
    fn updown_reaches_everything_on_tree() {
        let t = Topology::tree(2, 3);
        let tables = t.compute_routes(RA::UpDown).unwrap();
        for start in 0..t.num_switches() {
            for node in 0..8u16 {
                walk(&t, &tables, start, node);
            }
        }
    }

    #[test]
    fn updown_reaches_everything_on_double_ring() {
        let t = Topology::double_ring(6);
        let tables = t.compute_routes(RA::UpDown).unwrap();
        for start in 0..6 {
            for node in 0..6u16 {
                walk(&t, &tables, start, node);
            }
        }
    }

    #[test]
    fn xy_on_non_mesh_rejected() {
        let t = Topology::ring(4);
        assert!(matches!(
            t.compute_routes(RA::XyMesh {
                width: 2,
                height: 3
            }),
            Err(TopologyError::AlgorithmMismatch { .. })
        ));
    }

    #[test]
    fn crossbar_routes_directly() {
        let t = Topology::crossbar(3);
        let tables = t.compute_routes(RA::ShortestPath).unwrap();
        for node in 0..3u16 {
            let a = t.attachment_of(node).unwrap();
            assert_eq!(tables.port(0, node), Some(a.out_port));
        }
    }

    #[test]
    fn table_accessors() {
        let t = Topology::crossbar(2);
        let tables = t.compute_routes(RA::ShortestPath).unwrap();
        assert_eq!(tables.num_switches(), 1);
        assert_eq!(tables.switch_table(0).len(), 2);
        assert_eq!(tables.port(0, 99), None);
    }
}
