//! Wormhole deadlock analysis via channel dependency graphs.
//!
//! A set of routes is deadlock-free for wormhole switching (without
//! virtual channels) iff the *channel dependency graph* — whose vertices
//! are inter-switch links and whose edges connect link `a` to link `b`
//! when some route traverses `a` immediately followed by `b` — is acyclic
//! (Dally & Seitz criterion).

use crate::routing::SwitchTables;
use crate::Topology;
use std::fmt;

/// Result of a deadlock analysis.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeadlockReport {
    /// Channel dependency edges found: `(edge_index_a, edge_index_b)`.
    pub dependencies: Vec<(usize, usize)>,
    /// A cycle of edge indices, if one exists.
    pub cycle: Option<Vec<usize>>,
}

impl DeadlockReport {
    /// Returns `true` when the channel dependency graph is acyclic.
    pub fn is_deadlock_free(&self) -> bool {
        self.cycle.is_none()
    }
}

impl fmt::Display for DeadlockReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.cycle {
            None => write!(
                f,
                "deadlock-free ({} channel dependencies, acyclic)",
                self.dependencies.len()
            ),
            Some(c) => write!(f, "POTENTIAL DEADLOCK: channel cycle {c:?}"),
        }
    }
}

impl Topology {
    /// Builds the channel dependency graph induced by `tables` and
    /// searches it for cycles.
    pub fn deadlock_report(&self, tables: &SwitchTables) -> DeadlockReport {
        let num_edges = self.edges.len();
        // Map (switch, out_port) → edge index for quick lookup.
        let mut port_edge = vec![Vec::new(); self.num_switches];
        for (i, e) in self.edges.iter().enumerate() {
            port_edge[e.from].push((e.from_port, i));
        }
        let lookup = |sw: usize, port: u8| -> Option<usize> {
            port_edge[sw]
                .iter()
                .find(|&&(p, _)| p == port)
                .map(|&(_, i)| i)
        };
        let num_nodes = self
            .attachments
            .iter()
            .map(|a| a.node as usize + 1)
            .max()
            .unwrap_or(0);
        let mut deps = std::collections::BTreeSet::new();
        // For each (edge a, destination node): the packet arrives at
        // a.to and continues via tables[a.to][node]; if that is another
        // inter-switch edge b, record dependency a→b.
        for (ia, a) in self.edges.iter().enumerate() {
            for node in 0..num_nodes as u16 {
                let Some(port) = tables.port(a.to, node) else {
                    continue;
                };
                // Only count this dependency if edge `a` is actually on
                // some route to `node`: a is used toward node iff some
                // switch routes to node via a. Conservatively include all
                // incoming edges — standard CDG construction uses routes;
                // we refine by checking a.from routes to node via a.
                let uses_a = tables.port(a.from, node) == Some(a.from_port);
                if !uses_a {
                    continue;
                }
                if let Some(ib) = lookup(a.to, port) {
                    deps.insert((ia, ib));
                }
            }
        }
        let dependencies: Vec<(usize, usize)> = deps.into_iter().collect();
        // Cycle detection (iterative DFS, colouring).
        let mut adj = vec![Vec::new(); num_edges];
        for &(a, b) in &dependencies {
            adj[a].push(b);
        }
        let mut colour = vec![0u8; num_edges]; // 0 white, 1 grey, 2 black
        let mut parent = vec![usize::MAX; num_edges];
        for start in 0..num_edges {
            if colour[start] != 0 {
                continue;
            }
            let mut stack = vec![(start, 0usize)];
            colour[start] = 1;
            while let Some(&mut (v, ref mut next)) = stack.last_mut() {
                if *next < adj[v].len() {
                    let w = adj[v][*next];
                    *next += 1;
                    match colour[w] {
                        0 => {
                            colour[w] = 1;
                            parent[w] = v;
                            stack.push((w, 0));
                        }
                        1 => {
                            // Found a cycle: reconstruct w ← … ← v.
                            let mut cycle = vec![w];
                            let mut cur = v;
                            while cur != w && cur != usize::MAX {
                                cycle.push(cur);
                                cur = parent[cur];
                            }
                            cycle.reverse();
                            return DeadlockReport {
                                dependencies,
                                cycle: Some(cycle),
                            };
                        }
                        _ => {}
                    }
                } else {
                    colour[v] = 2;
                    stack.pop();
                }
            }
        }
        DeadlockReport {
            dependencies,
            cycle: None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::RouteAlgorithm as RA;

    #[test]
    fn xy_mesh_is_deadlock_free() {
        let t = Topology::mesh(4, 4);
        let tables = t
            .compute_routes(RA::XyMesh {
                width: 4,
                height: 4,
            })
            .unwrap();
        let report = t.deadlock_report(&tables);
        assert!(report.is_deadlock_free(), "{report}");
        assert!(!report.dependencies.is_empty());
    }

    #[test]
    fn unidirectional_ring_shortest_path_has_cycle() {
        let t = Topology::ring(4);
        let tables = t.compute_routes(RA::ShortestPath).unwrap();
        let report = t.deadlock_report(&tables);
        assert!(!report.is_deadlock_free(), "ring without VCs must cycle");
        assert!(report.to_string().contains("DEADLOCK"));
    }

    #[test]
    fn updown_double_ring_is_deadlock_free() {
        let t = Topology::double_ring(6);
        let tables = t.compute_routes(RA::UpDown).unwrap();
        let report = t.deadlock_report(&tables);
        assert!(report.is_deadlock_free(), "{report}");
    }

    #[test]
    fn updown_tree_is_deadlock_free() {
        let t = Topology::tree(2, 3);
        let tables = t.compute_routes(RA::UpDown).unwrap();
        let report = t.deadlock_report(&tables);
        assert!(report.is_deadlock_free(), "{report}");
    }

    #[test]
    fn crossbar_trivially_deadlock_free() {
        let t = Topology::crossbar(4);
        let tables = t.compute_routes(RA::ShortestPath).unwrap();
        let report = t.deadlock_report(&tables);
        assert!(report.is_deadlock_free());
        assert!(report.dependencies.is_empty());
        assert!(report.to_string().contains("deadlock-free"));
    }

    #[test]
    fn shortest_path_mesh_small_is_checked() {
        // BFS tie-breaking on a 2x2 mesh: verify the report runs; the
        // result may legitimately contain a cycle, we assert consistency
        // between report and accessor instead of a fixed verdict.
        let t = Topology::mesh(2, 2);
        let tables = t.compute_routes(RA::ShortestPath).unwrap();
        let report = t.deadlock_report(&tables);
        assert_eq!(report.is_deadlock_free(), report.cycle.is_none());
    }
}
