//! General topology construction with automatic port numbering.

use crate::{Attachment, Edge, PortCount, Topology, TopologyError};

/// Incrementally builds a [`Topology`], allocating switch ports in call
/// order: ports added by earlier `connect`/`attach` calls get lower
/// numbers.
///
/// # Examples
///
/// An irregular three-switch fabric:
///
/// ```
/// use noc_topology::TopologyBuilder;
/// let mut b = TopologyBuilder::new(3);
/// b.connect_bidir(0, 1);
/// b.connect_bidir(1, 2);
/// b.attach(0, 0)?;   // node 0 on switch 0
/// b.attach(1, 2)?;   // node 1 on switch 2
/// let topo = b.build();
/// assert_eq!(topo.num_switches(), 3);
/// assert_eq!(topo.num_endpoints(), 2);
/// # Ok::<(), noc_topology::TopologyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TopologyBuilder {
    num_switches: usize,
    edges: Vec<Edge>,
    attachments: Vec<Attachment>,
    ports: Vec<PortCount>,
}

impl TopologyBuilder {
    /// Starts a topology with `num_switches` unconnected switches.
    ///
    /// # Panics
    ///
    /// Panics if `num_switches` is zero.
    pub fn new(num_switches: usize) -> Self {
        assert!(num_switches > 0, "topology needs at least one switch");
        TopologyBuilder {
            num_switches,
            edges: Vec::new(),
            attachments: Vec::new(),
            ports: vec![PortCount::default(); num_switches],
        }
    }

    fn alloc_out(&mut self, switch: usize) -> u8 {
        let p = self.ports[switch].outputs;
        self.ports[switch].outputs += 1;
        p
    }

    fn alloc_in(&mut self, switch: usize) -> u8 {
        let p = self.ports[switch].inputs;
        self.ports[switch].inputs += 1;
        p
    }

    /// Adds a unidirectional link `from → to`.
    ///
    /// # Panics
    ///
    /// Panics if either switch index is out of range.
    pub fn connect(&mut self, from: usize, to: usize) -> &mut Self {
        assert!(from < self.num_switches && to < self.num_switches);
        let from_port = self.alloc_out(from);
        let to_port = self.alloc_in(to);
        self.edges.push(Edge {
            from,
            from_port,
            to,
            to_port,
        });
        self
    }

    /// Adds links in both directions between `a` and `b`.
    ///
    /// # Panics
    ///
    /// Panics if either switch index is out of range.
    pub fn connect_bidir(&mut self, a: usize, b: usize) -> &mut Self {
        self.connect(a, b);
        self.connect(b, a);
        self
    }

    /// Attaches endpoint `node` to `switch`, allocating an injection
    /// input port and an ejection output port.
    ///
    /// # Errors
    ///
    /// Returns [`TopologyError::BadSwitch`] or
    /// [`TopologyError::DuplicateNode`].
    pub fn attach(&mut self, node: u16, switch: usize) -> Result<&mut Self, TopologyError> {
        if switch >= self.num_switches {
            return Err(TopologyError::BadSwitch { switch });
        }
        if self.attachments.iter().any(|a| a.node == node) {
            return Err(TopologyError::DuplicateNode { node });
        }
        let in_port = self.alloc_in(switch);
        let out_port = self.alloc_out(switch);
        self.attachments.push(Attachment {
            node,
            switch,
            in_port,
            out_port,
        });
        Ok(self)
    }

    /// Finalises the topology.
    pub fn build(self) -> Topology {
        Topology {
            num_switches: self.num_switches,
            edges: self.edges,
            attachments: self.attachments,
            ports: self.ports,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn port_numbering_is_sequential() {
        let mut b = TopologyBuilder::new(2);
        b.connect(0, 1); // out 0 on sw0, in 0 on sw1
        b.connect(0, 1); // out 1 on sw0, in 1 on sw1
        b.attach(7, 0).unwrap(); // in 0 / out 2 on sw0
        let t = b.build();
        assert_eq!(t.edges()[0].from_port, 0);
        assert_eq!(t.edges()[1].from_port, 1);
        assert_eq!(t.edges()[1].to_port, 1);
        let a = t.attachment_of(7).unwrap();
        assert_eq!(a.in_port, 0);
        assert_eq!(a.out_port, 2);
    }

    #[test]
    fn duplicate_node_rejected() {
        let mut b = TopologyBuilder::new(1);
        b.attach(0, 0).unwrap();
        assert_eq!(
            b.attach(0, 0).unwrap_err(),
            TopologyError::DuplicateNode { node: 0 }
        );
    }

    #[test]
    fn bad_switch_rejected() {
        let mut b = TopologyBuilder::new(1);
        assert_eq!(
            b.attach(0, 5).unwrap_err(),
            TopologyError::BadSwitch { switch: 5 }
        );
    }

    #[test]
    #[should_panic]
    fn connect_out_of_range_panics() {
        TopologyBuilder::new(1).connect(0, 3);
    }
}
