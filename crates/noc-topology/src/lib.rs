//! NoC topologies: switch graphs, endpoint placement, routing-table
//! computation and deadlock analysis.
//!
//! The paper's transport layer owns "quality of service and scalability";
//! topology is the scalability half. This crate describes a fabric as a
//! directed graph of switches with numbered ports, attaches endpoint nodes
//! (NIUs), computes per-switch destination → output-port tables, and
//! checks the resulting routes for channel-dependency cycles (the
//! wormhole deadlock criterion).
//!
//! It deliberately depends on nothing: it emits plain data
//! ([`SwitchTables`]) that `noc-system` converts into live
//! `noc-transport` routing tables — topology is a transport concern and
//! must stay invisible to the transaction layer.
//!
//! # Examples
//!
//! ```
//! use noc_topology::{Topology, RouteAlgorithm};
//! // A 2x2 mesh with one endpoint per switch.
//! let topo = Topology::mesh(2, 2);
//! assert_eq!(topo.num_switches(), 4);
//! assert_eq!(topo.num_endpoints(), 4);
//! let tables = topo.compute_routes(RouteAlgorithm::XyMesh { width: 2, height: 2 })?;
//! let report = topo.deadlock_report(&tables);
//! assert!(report.is_deadlock_free(), "XY routing on a mesh is deadlock-free");
//! # Ok::<(), noc_topology::TopologyError>(())
//! ```

pub mod builder;
pub mod deadlock;
pub mod routing;

pub use builder::TopologyBuilder;
pub use deadlock::DeadlockReport;
pub use routing::{RouteAlgorithm, SwitchTables};

use std::fmt;

/// A directed inter-switch edge with its port numbers on both sides.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Edge {
    /// Source switch index.
    pub from: usize,
    /// Output port on the source switch.
    pub from_port: u8,
    /// Destination switch index.
    pub to: usize,
    /// Input port on the destination switch.
    pub to_port: u8,
}

/// An endpoint (NIU) attachment to a switch.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Attachment {
    /// The endpoint's node number (used as packet `dst`/`src`).
    pub node: u16,
    /// The switch it hangs off.
    pub switch: usize,
    /// Input port on the switch receiving the endpoint's flits.
    pub in_port: u8,
    /// Output port on the switch ejecting flits to the endpoint.
    pub out_port: u8,
}

/// Per-switch port counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortCount {
    /// Number of input ports.
    pub inputs: u8,
    /// Number of output ports.
    pub outputs: u8,
}

/// Errors from topology construction or routing.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TopologyError {
    /// A switch index was out of range.
    BadSwitch {
        /// The offending index.
        switch: usize,
    },
    /// The graph is not connected: no path between two switches.
    Disconnected {
        /// Source switch.
        from: usize,
        /// Unreachable switch.
        to: usize,
    },
    /// Duplicate endpoint node number.
    DuplicateNode {
        /// The duplicated node number.
        node: u16,
    },
    /// The algorithm does not fit this topology (e.g. XY on a non-mesh).
    AlgorithmMismatch {
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for TopologyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TopologyError::BadSwitch { switch } => write!(f, "switch {switch} out of range"),
            TopologyError::Disconnected { from, to } => {
                write!(f, "no path from switch {from} to switch {to}")
            }
            TopologyError::DuplicateNode { node } => {
                write!(f, "endpoint node {node} attached twice")
            }
            TopologyError::AlgorithmMismatch { reason } => {
                write!(f, "routing algorithm mismatch: {reason}")
            }
        }
    }
}

impl std::error::Error for TopologyError {}

/// A complete fabric description: switches, inter-switch edges and
/// endpoint attachments, with all port numbers assigned.
///
/// Build via the convenience constructors ([`Topology::mesh`],
/// [`Topology::ring`], …) or the general [`TopologyBuilder`].
#[derive(Debug, Clone)]
pub struct Topology {
    pub(crate) num_switches: usize,
    pub(crate) edges: Vec<Edge>,
    pub(crate) attachments: Vec<Attachment>,
    pub(crate) ports: Vec<PortCount>,
}

impl Topology {
    /// Number of switches.
    pub fn num_switches(&self) -> usize {
        self.num_switches
    }

    /// Number of attached endpoints.
    pub fn num_endpoints(&self) -> usize {
        self.attachments.len()
    }

    /// The inter-switch edges.
    pub fn edges(&self) -> &[Edge] {
        &self.edges
    }

    /// The endpoint attachments.
    pub fn attachments(&self) -> &[Attachment] {
        &self.attachments
    }

    /// Port counts per switch.
    pub fn ports(&self) -> &[PortCount] {
        &self.ports
    }

    /// Finds an endpoint's attachment by node number.
    pub fn attachment_of(&self, node: u16) -> Option<&Attachment> {
        self.attachments.iter().find(|a| a.node == node)
    }

    /// A `width` × `height` mesh with one endpoint per switch, node `i`
    /// on switch `i` (row-major). Uses bidirectional links.
    ///
    /// # Panics
    ///
    /// Panics if either dimension is zero.
    pub fn mesh(width: usize, height: usize) -> Topology {
        assert!(width > 0 && height > 0, "mesh dimensions must be non-zero");
        let mut b = TopologyBuilder::new(width * height);
        for y in 0..height {
            for x in 0..width {
                let s = y * width + x;
                if x + 1 < width {
                    b.connect_bidir(s, s + 1);
                }
                if y + 1 < height {
                    b.connect_bidir(s, s + width);
                }
            }
        }
        for s in 0..width * height {
            b.attach(s as u16, s).expect("switch index in range");
        }
        b.build()
    }

    /// A unidirectional ring of `n` switches, one endpoint each.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn ring(n: usize) -> Topology {
        assert!(n >= 2, "ring needs at least two switches");
        let mut b = TopologyBuilder::new(n);
        for s in 0..n {
            b.connect(s, (s + 1) % n);
        }
        for s in 0..n {
            b.attach(s as u16, s).expect("switch index in range");
        }
        b.build()
    }

    /// A bidirectional double ring of `n` switches, one endpoint each.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn double_ring(n: usize) -> Topology {
        assert!(n >= 2, "ring needs at least two switches");
        let mut b = TopologyBuilder::new(n);
        for s in 0..n {
            b.connect_bidir(s, (s + 1) % n);
        }
        for s in 0..n {
            b.attach(s as u16, s).expect("switch index in range");
        }
        b.build()
    }

    /// A single-switch crossbar with `n` endpoints — the degenerate NoC
    /// (and the reference fabric of the bridged baseline).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn crossbar(n: usize) -> Topology {
        assert!(n > 0, "crossbar needs at least one endpoint");
        let mut b = TopologyBuilder::new(1);
        for node in 0..n {
            b.attach(node as u16, 0).expect("switch 0 exists");
        }
        b.build()
    }

    /// A balanced tree: `levels` levels of switches with `arity` children
    /// each; endpoints attach to the leaves (arity per leaf).
    ///
    /// # Panics
    ///
    /// Panics if `arity` is zero or `levels` is zero.
    pub fn tree(arity: usize, levels: usize) -> Topology {
        assert!(arity > 0 && levels > 0, "degenerate tree");
        // Switch count: arity^0 + ... + arity^(levels-1)
        let mut counts = Vec::new();
        let mut total = 0usize;
        let mut level_size = 1usize;
        for _ in 0..levels {
            counts.push(level_size);
            total += level_size;
            level_size *= arity;
        }
        let mut b = TopologyBuilder::new(total);
        // Connect parents to children.
        let mut level_start = 0usize;
        for &count in counts.iter().take(levels - 1) {
            let next_start = level_start + count;
            for p in 0..count {
                let parent = level_start + p;
                for c in 0..arity {
                    let child = next_start + p * arity + c;
                    b.connect_bidir(parent, child);
                }
            }
            level_start = next_start;
        }
        // Endpoints on leaves.
        let leaf_start = total - counts[levels - 1];
        let mut node = 0u16;
        for leaf in leaf_start..total {
            for _ in 0..arity {
                b.attach(node, leaf).expect("leaf exists");
                node += 1;
            }
        }
        b.build()
    }

    /// Adjacency: outgoing `(edge_index, to_switch)` per switch.
    pub(crate) fn adjacency(&self) -> Vec<Vec<(usize, usize)>> {
        let mut adj = vec![Vec::new(); self.num_switches];
        for (i, e) in self.edges.iter().enumerate() {
            adj[e.from].push((i, e.to));
        }
        adj
    }
}

impl fmt::Display for Topology {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "topology: {} switches, {} links, {} endpoints",
            self.num_switches,
            self.edges.len(),
            self.attachments.len()
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mesh_geometry() {
        let t = Topology::mesh(3, 2);
        assert_eq!(t.num_switches(), 6);
        assert_eq!(t.num_endpoints(), 6);
        // 3x2 mesh: horizontal links 2 per row x 2 rows = 4, vertical 3;
        // each bidirectional = 2 directed edges
        assert_eq!(t.edges().len(), (4 + 3) * 2);
    }

    #[test]
    fn ring_is_unidirectional() {
        let t = Topology::ring(4);
        assert_eq!(t.edges().len(), 4);
        assert_eq!(t.num_endpoints(), 4);
    }

    #[test]
    fn double_ring_doubles_edges() {
        let t = Topology::double_ring(4);
        assert_eq!(t.edges().len(), 8);
    }

    #[test]
    fn crossbar_single_switch() {
        let t = Topology::crossbar(5);
        assert_eq!(t.num_switches(), 1);
        assert_eq!(t.num_endpoints(), 5);
        assert!(t.edges().is_empty());
        assert_eq!(t.ports()[0].inputs, 5);
        assert_eq!(t.ports()[0].outputs, 5);
    }

    #[test]
    fn tree_counts() {
        let t = Topology::tree(2, 3); // 1 + 2 + 4 switches, 8 endpoints
        assert_eq!(t.num_switches(), 7);
        assert_eq!(t.num_endpoints(), 8);
        assert_eq!(t.edges().len(), 6 * 2);
    }

    #[test]
    fn attachment_lookup() {
        let t = Topology::mesh(2, 2);
        let a = t.attachment_of(3).unwrap();
        assert_eq!(a.switch, 3);
        assert!(t.attachment_of(99).is_none());
    }

    #[test]
    fn ports_are_consistent_with_edges() {
        let t = Topology::mesh(2, 2);
        // corner switch: 2 mesh links (bidir) + endpoint = 3 in, 3 out
        assert_eq!(t.ports()[0].inputs, 3);
        assert_eq!(t.ports()[0].outputs, 3);
    }

    #[test]
    fn display() {
        let t = Topology::ring(3);
        assert!(t.to_string().contains("3 switches"));
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn tiny_ring_panics() {
        Topology::ring(1);
    }
}
