//! `scn` — run scenario text files on any backend.
//!
//! ```text
//! scn [OPTIONS] FILE...
//! scn serve [SERVE-OPTIONS]
//!
//!   --backend noc|bridged|bus|all   backend for plain scenario files
//!                                   (default all; sweep files carry
//!                                   their own backends per point)
//!   --step dense|horizon|sharded|both  step mode; "both" runs each
//!                                   simulation twice, fails unless
//!                                   the logs, timestamps included, are
//!                                   identical, and reports per-backend
//!                                   executed-step counts plus the
//!                                   dense/horizon ratio. Default:
//!                                   horizon for scenario files, the
//!                                   file's own step settings for
//!                                   sweeps (an explicit --step
//!                                   overrides them, per-point
//!                                   overrides included)
//!   --shards N                      region/thread count for sharded
//!                                   stepping; alone it implies
//!                                   --step sharded, while with
//!                                   --step both the differential pits
//!                                   dense (unsharded) against the
//!                                   N-way sharded runner — the
//!                                   bit-identity gate CI runs on the
//!                                   corpus
//!   --assert-fewer-steps            with --step both: fail unless
//!                                   horizon executed strictly fewer
//!                                   steps than dense on every row (the
//!                                   CI guard keeping the optimisation
//!                                   from silently regressing to dense)
//!   --assert-wakeup-discipline      with --step both: fail unless the
//!                                   horizon run's next_activity polls
//!                                   stay within a fixed factor of its
//!                                   calendar pops on every row (the CI
//!                                   guard keeping the advance loop
//!                                   event-driven rather than
//!                                   rescan-driven)
//!   --assert-target-spread RATIO    fail unless the hottest target's
//!                                   mean latency is at least RATIO× the
//!                                   coldest trafficked target's on
//!                                   every backend (the CI guard proving
//!                                   hotspot workloads congest); a
//!                                   per-target latency table is printed
//!                                   for any multi-target scenario
//!   --assert-occupancy RATIO        fail if the sharded run's
//!                                   epoch-occupancy ratio — the busiest
//!                                   region's share of the epoch work,
//!                                   printed in the occup column next to
//!                                   polls/pops; 1/regions is a perfect
//!                                   spread, 1.0 one region doing
//!                                   everything — exceeds RATIO on any
//!                                   row: the CI guard keeping the
//!                                   balanced partitioner from
//!                                   regressing to a lopsided cut on
//!                                   hotspot workloads; needs a sharded
//!                                   run, and the ratio is deterministic
//!                                   (regions are logical, so core count
//!                                   does not move it)
//!   --max-cycles N                  drain budget (default 10_000_000
//!                                   for scenario files, the file's
//!                                   budget for sweeps)
//! ```
//!
//! With `--backend all`, scenarios that declare divided clocks or
//! target kinds a baseline cannot model are skipped (with a note) on
//! the backends that reject them; naming such a backend explicitly is
//! an error. Exit status is non-zero on parse errors, failed drains and
//! dense/horizon divergence.
//!
//! `scn serve` starts the long-running service instead: requests come
//! in as `run <id> <path>` lines on stdin and/or `*.scn` files dropped
//! into `--spool DIR`, and one JSON result record per point streams to
//! stdout. Platforms are compiled once and reused across points via the
//! checkpoint cache (see the `noc-serve` crate and README).
//!
//! ```text
//!   --spool DIR        watch DIR for *.scn request files (consumed
//!                      files are renamed *.scn.done; a file named
//!                      "shutdown" stops the server)
//!   --threads N        worker threads per request (default: all cores)
//!   --queue N          request queue depth before intake blocks (16)
//!   --cache-cap N      platform checkpoints kept, LRU beyond (8)
//!   --max-cycles N     budget for plain scenario requests (10_000_000)
//!   --step dense|horizon   step mode for plain scenario requests
//!   --poll-ms N        spool scan interval in milliseconds (50)
//! ```

use noc_protocols::CompletionRecord;
use noc_scenario::{
    parse_document, Backend, Document, EpochOccupancy, ScenarioError, ScenarioSpec, StepMode, Sweep,
};
use noc_stats::Table;
use std::fmt::Write as _;

#[derive(Clone, Copy, PartialEq)]
enum BackendSel {
    One(&'static str),
    All,
}

#[derive(Clone, Copy, PartialEq)]
enum StepSel {
    One(StepMode),
    Both,
}

struct Options {
    files: Vec<String>,
    backend: BackendSel,
    /// `None` until `--step` is given: scenario files default to
    /// horizon, sweep files to their own settings.
    step: Option<StepSel>,
    /// `None` until `--max-cycles` is given: scenario files default to
    /// 10M cycles, sweep files to their own budget.
    max_cycles: Option<u64>,
    /// With `--step both`: fail unless horizon executed strictly fewer
    /// steps than dense on every row.
    assert_fewer_steps: bool,
    /// With `--step both`: fail unless the horizon run's poll count
    /// stays within [`WAKEUP_POLL_FACTOR`]× its calendar pops (plus
    /// [`WAKEUP_POLL_SLACK`]) on every row.
    assert_wakeup_discipline: bool,
    /// Fail unless the hottest target's mean latency is at least this
    /// factor above the coldest trafficked target's, on every backend —
    /// the CI guard proving the hotspot workloads actually congest.
    assert_target_spread: Option<f64>,
    /// Fail if the sharded run's epoch-occupancy ratio (the busiest
    /// region's share of the epoch work; lower is a better spread)
    /// exceeds this ceiling on any row — the CI guard keeping the
    /// balanced partitioner from regressing to a lopsided cut on
    /// hotspot workloads. Requires a sharded run (only sharded stepping
    /// has epochs to measure).
    assert_occupancy: Option<f64>,
    /// `--shards N`: region/thread count for sharded stepping. Alone it
    /// selects sharded stepping outright; with `--step both` the
    /// comparison becomes dense (unsharded, the reference semantics)
    /// versus sharded — the record-for-record bit-identity gate CI runs
    /// on the corpus.
    shards: Option<usize>,
}

/// `--assert-wakeup-discipline` bound: every `next_activity` poll must
/// be "paid for" by calendar traffic. One advance-loop iteration costs
/// one poll and retires at least one event on the backends where the
/// calendar drives stepping, so a healthy run stays well under
/// `polls <= pops * FACTOR + SLACK`; a regression to dense-style
/// rescanning sends polls to O(cycles) while pops stay put.
const WAKEUP_POLL_FACTOR: u64 = 4;
const WAKEUP_POLL_SLACK: u64 = 64;

fn usage() -> &'static str {
    "usage: scn [--backend noc|bridged|bus|all] [--step dense|horizon|sharded|both] \
     [--shards N] [--assert-fewer-steps] [--assert-wakeup-discipline] \
     [--assert-target-spread RATIO] [--assert-occupancy RATIO] [--max-cycles N] FILE..."
}

fn parse_args() -> Result<Options, Box<dyn std::error::Error>> {
    let mut opts = Options {
        files: Vec::new(),
        backend: BackendSel::All,
        step: None,
        max_cycles: None,
        assert_fewer_steps: false,
        assert_wakeup_discipline: false,
        assert_target_spread: None,
        assert_occupancy: None,
        shards: None,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--backend" => {
                opts.backend = match args.next().as_deref() {
                    Some("noc") => BackendSel::One("noc"),
                    Some("bridged") => BackendSel::One("bridged"),
                    Some("bus") => BackendSel::One("bus"),
                    Some("all") => BackendSel::All,
                    other => return Err(format!("bad --backend {other:?}\n{}", usage()).into()),
                }
            }
            "--step" => {
                opts.step = Some(match args.next().as_deref() {
                    Some("dense") => StepSel::One(StepMode::Dense),
                    Some("horizon") => StepSel::One(StepMode::Horizon),
                    Some("sharded") => StepSel::One(StepMode::Sharded { threads: 0 }),
                    Some("both") => StepSel::Both,
                    other => return Err(format!("bad --step {other:?}\n{}", usage()).into()),
                })
            }
            "--shards" => {
                let v = args.next().ok_or("--shards needs a thread count")?;
                let n: usize = v.parse().map_err(|_| format!("bad --shards {v:?}"))?;
                if n == 0 {
                    return Err(format!("--shards {v:?} must be >= 1").into());
                }
                opts.shards = Some(n);
            }
            "--max-cycles" => {
                let v = args.next().ok_or("--max-cycles needs a number")?;
                opts.max_cycles = Some(v.parse().map_err(|_| format!("bad --max-cycles {v:?}"))?);
            }
            "--assert-fewer-steps" => opts.assert_fewer_steps = true,
            "--assert-wakeup-discipline" => opts.assert_wakeup_discipline = true,
            "--assert-target-spread" => {
                let v = args.next().ok_or("--assert-target-spread needs a ratio")?;
                let ratio: f64 = v
                    .parse()
                    .map_err(|_| format!("bad --assert-target-spread {v:?}"))?;
                if ratio < 1.0 || ratio.is_nan() {
                    return Err(format!("--assert-target-spread {v:?} must be >= 1").into());
                }
                opts.assert_target_spread = Some(ratio);
            }
            "--assert-occupancy" => {
                let v = args.next().ok_or("--assert-occupancy needs a ratio")?;
                let ratio: f64 = v
                    .parse()
                    .map_err(|_| format!("bad --assert-occupancy {v:?}"))?;
                if !(ratio > 0.0 && ratio <= 1.0) {
                    return Err(format!("--assert-occupancy {v:?} must be in (0, 1]").into());
                }
                opts.assert_occupancy = Some(ratio);
            }
            "--help" | "-h" => {
                println!("{}", usage());
                std::process::exit(0);
            }
            other if other.starts_with('-') => {
                return Err(format!("unknown option {other:?}\n{}", usage()).into());
            }
            file => opts.files.push(file.to_owned()),
        }
    }
    if opts.files.is_empty() {
        return Err(format!("no scenario files given\n{}", usage()).into());
    }
    // A guard that cannot guard is a misconfiguration: the step
    // comparison only exists when both modes run.
    if opts.assert_fewer_steps && opts.step != Some(StepSel::Both) {
        return Err(format!("--assert-fewer-steps requires --step both\n{}", usage()).into());
    }
    if opts.assert_wakeup_discipline && opts.step != Some(StepSel::Both) {
        return Err(format!(
            "--assert-wakeup-discipline requires --step both\n{}",
            usage()
        )
        .into());
    }
    // `--shards N` fixes the thread count of sharded stepping; alone it
    // selects sharded stepping outright (with `--step both` it instead
    // turns the comparison into dense-unsharded vs sharded, resolved in
    // run_spec).
    if let Some(n) = opts.shards {
        match &mut opts.step {
            Some(StepSel::One(StepMode::Sharded { threads })) if *threads == 0 => *threads = n,
            None => opts.step = Some(StepSel::One(StepMode::Sharded { threads: n })),
            _ => {}
        }
    }
    Ok(opts)
}

fn backend_by_label(label: &str) -> Backend {
    match label {
        "noc" => Backend::noc(),
        "bridged" => Backend::bridged(),
        "bus" => Backend::bus(),
        _ => unreachable!("labels come from parse_args"),
    }
}

/// The comparable part of a run (logs with timestamps) plus the
/// per-mode accounting — executed steps and the horizon machinery's
/// poll/pop counters — which legitimately differs between step modes.
struct RunOutcome {
    compared: (bool, u64, Vec<Vec<CompletionRecord>>),
    steps: u64,
    polls: u64,
    pops: u64,
    /// Sharded runs only: the epoch-occupancy counter. Deliberately
    /// outside `compared` — like polls/pops it is stepping accounting,
    /// not simulated behaviour.
    occupancy: Option<EpochOccupancy>,
}

fn run_once(
    spec: &ScenarioSpec,
    backend: &Backend,
    mode: StepMode,
    max_cycles: u64,
) -> Result<RunOutcome, ScenarioError> {
    let mut sim = spec.build(backend)?;
    let drained = sim.run_until_with(max_cycles, mode);
    let logs = sim
        .logs()
        .iter()
        .map(|(_, log)| log.records().to_vec())
        .collect();
    Ok(RunOutcome {
        compared: (drained, sim.now(), logs),
        steps: sim.executed_steps(),
        polls: sim.horizon_polls(),
        pops: sim.calendar_pops(),
        occupancy: sim.report().occupancy,
    })
}

/// Per-target completion stats from one run's logs: for each memory
/// region (by declaration order), the completions it absorbed and their
/// mean latency.
fn target_stats(spec: &ScenarioSpec, logs: &[Vec<CompletionRecord>]) -> Vec<(String, usize, f64)> {
    let mut acc = vec![(0usize, 0u64); spec.memories.len()];
    for rec in logs.iter().flatten() {
        if let Some(i) = spec
            .memories
            .iter()
            .position(|m| rec.addr >= m.base && rec.addr < m.end)
        {
            acc[i].0 += 1;
            acc[i].1 += rec.latency();
        }
    }
    spec.memories
        .iter()
        .zip(acc)
        .map(|(m, (n, sum))| {
            let mean = if n == 0 { 0.0 } else { sum as f64 / n as f64 };
            (m.name.clone(), n, mean)
        })
        .collect()
}

/// Enforces `--assert-target-spread`: the hottest target's mean latency
/// must be at least `ratio`× the coldest trafficked target's.
fn check_target_spread(
    backend: &Backend,
    stats: &[(String, usize, f64)],
    ratio: f64,
) -> Result<(), Box<dyn std::error::Error>> {
    let trafficked: Vec<_> = stats.iter().filter(|(_, n, _)| *n > 0).collect();
    if trafficked.len() < 2 {
        return Err(format!(
            "{backend}: --assert-target-spread needs at least two targets with \
             traffic, got {}",
            trafficked.len()
        )
        .into());
    }
    let hot = trafficked
        .iter()
        .max_by(|a, b| a.2.total_cmp(&b.2))
        .expect("non-empty");
    let cold = trafficked
        .iter()
        .min_by(|a, b| a.2.total_cmp(&b.2))
        .expect("non-empty");
    if hot.2 < cold.2 * ratio {
        return Err(format!(
            "{backend}: hot target {} (mean {:.1} cy) is only {:.2}x the cold \
             target {} (mean {:.1} cy); --assert-target-spread wants {ratio}x",
            hot.0,
            hot.2,
            hot.2 / cold.2.max(f64::MIN_POSITIVE),
            cold.0,
            cold.2
        )
        .into());
    }
    Ok(())
}

/// Runs a spec on one backend under the step selection; returns the
/// table cells plus per-target stats, or `None` when the backend
/// rejects divided clocks and skipping is allowed.
#[allow(clippy::type_complexity)]
fn run_spec(
    spec: &ScenarioSpec,
    backend: &Backend,
    step: StepSel,
    max_cycles: u64,
    skip_unsupported: bool,
    opts: &Options,
) -> Result<Option<(Vec<String>, Vec<(String, usize, f64)>)>, Box<dyn std::error::Error>> {
    let modes: Vec<StepMode> = match step {
        StepSel::One(mode) => vec![mode],
        // Under `--shards N` the differential pairs the dense unsharded
        // reference against the sharded runner — the bit-identity gate.
        StepSel::Both => vec![
            StepMode::Dense,
            match opts.shards {
                Some(threads) => StepMode::Sharded { threads },
                None => StepMode::Horizon,
            },
        ],
    };
    let mut outcomes = Vec::new();
    for mode in &modes {
        match run_once(spec, backend, *mode, max_cycles) {
            Ok(outcome) => outcomes.push(outcome),
            Err(
                e @ (ScenarioError::UnsupportedClock { .. }
                | ScenarioError::UnsupportedTarget { .. }),
            ) if skip_unsupported => {
                println!("  {backend}: skipped ({e})");
                return Ok(None);
            }
            Err(e) => return Err(e.into()),
        }
    }
    if outcomes.len() == 2 && outcomes[0].compared != outcomes[1].compared {
        return Err(format!("{backend}: {} and {} stepping diverge", modes[0], modes[1]).into());
    }
    let (drained, cycles, logs) = &outcomes[0].compared;
    if !drained {
        return Err(format!("{backend}: failed to drain in {max_cycles} cycles").into());
    }
    let completions: usize = logs.iter().map(Vec::len).sum();
    // No completions means no latency sample at all; the cell shows "-"
    // rather than a fabricated 0.0 (mirrors the serve layer's `null`).
    let mean_cell = if completions == 0 {
        "-".to_owned()
    } else {
        let mean = logs
            .iter()
            .flatten()
            .map(|r| r.latency() as f64)
            .sum::<f64>()
            / completions as f64;
        format!("{mean:.1}")
    };
    let mut step_cell = String::new();
    for (i, mode) in modes.iter().enumerate() {
        if i > 0 {
            step_cell.push('=');
        }
        let _ = write!(step_cell, "{mode}");
    }
    // Executed-step accounting: one count per mode, plus the
    // dense/horizon collapse ratio when both ran.
    let steps_cell = outcomes
        .iter()
        .map(|o| o.steps.to_string())
        .collect::<Vec<_>>()
        .join("/");
    let ratio_cell = if outcomes.len() == 2 {
        let (dense, horizon) = (outcomes[0].steps, outcomes[1].steps);
        if opts.assert_fewer_steps && horizon >= dense {
            return Err(format!(
                "{backend}: horizon executed {horizon} steps, dense {dense} — \
                 the horizon machinery regressed to dense stepping"
            )
            .into());
        }
        format!("{:.1}x", dense as f64 / horizon.max(1) as f64)
    } else {
        "-".to_owned()
    };
    // Wakeup accounting comes from the horizon run (the last outcome:
    // `modes` lists dense first under Both); dense stepping never
    // polls, so its counters carry no signal.
    let horizon_ran = !matches!(step, StepSel::One(StepMode::Dense));
    let wake_cell = if horizon_ran {
        let o = outcomes.last().expect("at least one mode ran");
        if opts.assert_wakeup_discipline {
            let bound = o.pops.saturating_mul(WAKEUP_POLL_FACTOR) + WAKEUP_POLL_SLACK;
            if o.polls > bound {
                return Err(format!(
                    "{backend}: horizon polled next_activity {} times against {} \
                     calendar pops (bound {bound}) — the advance loop is rescanning \
                     instead of riding the calendar",
                    o.polls, o.pops
                )
                .into());
            }
        }
        format!("{}/{}", o.polls, o.pops)
    } else {
        "-".to_owned()
    };
    // Epoch occupancy exists only on sharded runs (the last outcome
    // under Both); it sits next to polls/pops as stepping accounting.
    let occupancy = outcomes.iter().rev().find_map(|o| o.occupancy);
    let occ_cell = match occupancy {
        Some(occ) => format!("{:.3}", occ.ratio()),
        None => "-".to_owned(),
    };
    if let Some(ceiling) = opts.assert_occupancy {
        let Some(occ) = occupancy else {
            return Err(format!(
                "{backend}: --assert-occupancy needs a sharded run \
                 (use --step sharded or --shards N)"
            )
            .into());
        };
        if occ.ratio() > ceiling {
            return Err(format!(
                "{backend}: the busiest region carried {:.3} of the epoch work \
                 over {} epochs, above the --assert-occupancy ceiling {ceiling} \
                 — the partition is lopsided for this workload",
                occ.ratio(),
                occ.epochs
            )
            .into());
        }
    }
    let stats = target_stats(spec, logs);
    if let Some(ratio) = opts.assert_target_spread {
        check_target_spread(backend, &stats, ratio)?;
    }
    Ok(Some((
        vec![
            backend.label().to_owned(),
            step_cell,
            cycles.to_string(),
            completions.to_string(),
            mean_cell,
            steps_cell,
            ratio_cell,
            wake_cell,
            occ_cell,
        ],
        stats,
    )))
}

fn run_scenario_file(
    spec: &ScenarioSpec,
    opts: &Options,
) -> Result<(), Box<dyn std::error::Error>> {
    let labels: &[&str] = match opts.backend {
        BackendSel::One(label) => &[label],
        BackendSel::All => &["noc", "bridged", "bus"],
    };
    let step = opts.step.unwrap_or(StepSel::One(StepMode::Horizon));
    let max_cycles = opts.max_cycles.unwrap_or(10_000_000);
    let mut t = Table::new(&[
        "backend",
        "step",
        "cycles",
        "completions",
        "mean lat (cy)",
        "steps",
        "dense/horizon",
        "polls/pops",
        "occup",
    ]);
    t.numeric();
    let mut target_rows = Vec::new();
    for label in labels {
        let backend = backend_by_label(label);
        let skip = opts.backend == BackendSel::All;
        if let Some((row, stats)) = run_spec(spec, &backend, step, max_cycles, skip, opts)? {
            t.row(&row);
            for (target, n, mean) in stats {
                // A target nothing reached has no latency, not a zero
                // one — print "-" rather than a fabricated 0.0.
                let mean_cell = if n == 0 {
                    "-".to_owned()
                } else {
                    format!("{mean:.1}")
                };
                target_rows.push(vec![label.to_string(), target, n.to_string(), mean_cell]);
            }
        }
    }
    println!("{t}");
    // The per-target breakdown only says something when traffic can
    // actually spread over more than one target.
    if spec.memories.len() > 1 {
        let mut pt = Table::new(&["backend", "target", "completions", "mean lat (cy)"]);
        pt.numeric();
        for row in &target_rows {
            pt.row(row);
        }
        println!("per-target latency:");
        println!("{pt}");
    }
    Ok(())
}

fn run_sweep_file(sweep: &Sweep, opts: &Options) -> Result<(), Box<dyn std::error::Error>> {
    let max_cycles = opts.max_cycles.unwrap_or_else(|| sweep.max_cycles());
    if opts.step == Some(StepSel::Both) {
        // Differential mode: drive each point by hand so dense and
        // horizon logs can be compared record-for-record.
        let mut t = Table::new(&[
            "point",
            "backend",
            "step",
            "cycles",
            "completions",
            "mean lat (cy)",
            "steps",
            "dense/horizon",
            "polls/pops",
            "occup",
        ]);
        t.numeric();
        for p in sweep.points() {
            let (row, _) = run_spec(&p.spec, &p.backend, StepSel::Both, max_cycles, false, opts)?
                .expect("skipping is disabled");
            let mut cells = vec![p.label.clone()];
            cells.extend(row);
            t.row(&cells);
        }
        println!("{t}");
        return Ok(());
    }
    // An explicit --step or --max-cycles overrides the file's settings
    // (per-point step overrides included); otherwise the file rules.
    let mut sweep = sweep.clone();
    if opts.max_cycles.is_some() {
        sweep = sweep.with_max_cycles(max_cycles);
    }
    if let Some(StepSel::One(mode)) = opts.step {
        let points: Vec<_> = sweep.points().to_vec();
        let mut forced = Sweep::new()
            .with_max_cycles(sweep.max_cycles())
            .with_step_mode(mode);
        if let Some(threads) = sweep.threads() {
            forced = forced.with_threads(threads);
        }
        for mut p in points {
            p.step = None;
            forced = forced.with_point(p);
        }
        sweep = forced;
    }
    let mut t = Table::new(&[
        "point",
        "backend",
        "cycles",
        "completions",
        "mean lat (cy)",
        "steps",
    ]);
    t.numeric();
    // Stream results into the table as points finish (in declaration
    // order) instead of buffering the whole grid first.
    sweep.run_streaming(|i, r| {
        t.row(&[
            r.label.clone(),
            sweep.points()[i].backend.label().to_owned(),
            r.report.cycles.to_string(),
            r.report.total_completions().to_string(),
            if r.report.total_completions() == 0 {
                "-".to_owned()
            } else {
                format!("{:.1}", r.report.mean_latency())
            },
            r.report.steps.to_string(),
        ]);
    })?;
    println!("{t}");
    Ok(())
}

/// Parses and runs `scn serve ...` (everything after the subcommand
/// word).
fn run_serve(args: impl Iterator<Item = String>) -> Result<(), Box<dyn std::error::Error>> {
    let usage = "usage: scn serve [--spool DIR] [--threads N] [--queue N] [--cache-cap N] \
         [--max-cycles N] [--step dense|horizon|sharded] [--shards N] [--poll-ms N]";
    let mut config = noc_serve::ServeConfig::default();
    let mut shards: Option<usize> = None;
    let mut args = args;
    while let Some(arg) = args.next() {
        match arg.as_str() {
            "--spool" => {
                let dir = args.next().ok_or("--spool needs a directory")?;
                config.spool = Some(std::path::PathBuf::from(dir));
            }
            "--threads" => {
                let v = args.next().ok_or("--threads needs a number")?;
                config.threads = Some(v.parse().map_err(|_| format!("bad --threads {v:?}"))?);
            }
            "--queue" => {
                let v = args.next().ok_or("--queue needs a number")?;
                config.queue_depth = v.parse().map_err(|_| format!("bad --queue {v:?}"))?;
            }
            "--cache-cap" => {
                let v = args.next().ok_or("--cache-cap needs a number")?;
                config.cache_capacity = v.parse().map_err(|_| format!("bad --cache-cap {v:?}"))?;
            }
            "--max-cycles" => {
                let v = args.next().ok_or("--max-cycles needs a number")?;
                config.max_cycles = v.parse().map_err(|_| format!("bad --max-cycles {v:?}"))?;
            }
            "--step" => {
                config.step_mode = match args.next().as_deref() {
                    Some("dense") => StepMode::Dense,
                    Some("horizon") => StepMode::Horizon,
                    Some("sharded") => StepMode::Sharded { threads: 0 },
                    other => return Err(format!("bad --step {other:?}\n{usage}").into()),
                };
            }
            "--shards" => {
                let v = args.next().ok_or("--shards needs a thread count")?;
                let n: usize = v.parse().map_err(|_| format!("bad --shards {v:?}"))?;
                if n == 0 {
                    return Err(format!("--shards {v:?} must be >= 1").into());
                }
                shards = Some(n);
            }
            "--poll-ms" => {
                let v = args.next().ok_or("--poll-ms needs a number")?;
                let ms: u64 = v.parse().map_err(|_| format!("bad --poll-ms {v:?}"))?;
                config.poll = std::time::Duration::from_millis(ms);
            }
            "--help" | "-h" => {
                println!("{usage}");
                return Ok(());
            }
            other => return Err(format!("unknown serve option {other:?}\n{usage}").into()),
        }
    }
    // `--shards N` selects sharded stepping outright, whatever order the
    // flags arrived in.
    if let Some(threads) = shards {
        config.step_mode = StepMode::Sharded { threads };
    }
    if let Some(dir) = &config.spool {
        std::fs::create_dir_all(dir).map_err(|e| format!("--spool {}: {e}", dir.display()))?;
    }
    let stdin = std::io::BufReader::new(std::io::stdin());
    let mut stdout = std::io::stdout().lock();
    let stats = noc_serve::serve(config, stdin, &mut stdout)?;
    eprintln!(
        "served {} requests ({} rejected): {} points ok, {} failed; \
         cache {} warm / {} cold",
        stats.requests,
        stats.rejected,
        stats.points_ok,
        stats.points_failed,
        stats.cache_hits,
        stats.cache_misses
    );
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1).peekable();
    if args.peek().map(String::as_str) == Some("serve") {
        args.next();
        return run_serve(args);
    }
    let opts = parse_args()?;
    for file in &opts.files {
        let text = std::fs::read_to_string(file).map_err(|e| format!("{file}: {e}"))?;
        let mut doc = parse_document(&text).map_err(|e| format!("{file}: {e}"))?;
        // Relative trace paths resolve against the scenario file, not
        // the process working directory — the same rule the serve layer
        // applies to stdin and spool requests.
        doc.resolve_trace_paths_from(std::path::Path::new(file));
        match doc {
            Document::Scenario(spec) => {
                println!(
                    "{file}: scenario ({} initiators, {} memories)",
                    spec.initiators.len(),
                    spec.memories.len()
                );
                run_scenario_file(&spec, &opts).map_err(|e| format!("{file}: {e}"))?;
            }
            Document::Sweep(sweep) => {
                println!("{file}: sweep ({} points)", sweep.points().len());
                run_sweep_file(&sweep, &opts).map_err(|e| format!("{file}: {e}"))?;
            }
        }
    }
    Ok(())
}
