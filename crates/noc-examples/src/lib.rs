//! Host crate for the workspace examples located in the repository-level
//! `examples/` directory.
