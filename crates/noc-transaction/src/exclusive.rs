//! Synchronisation state machines: the exclusive-access monitor (modern,
//! non-blocking) and the lock arbiter (legacy, blocking).
//!
//! Paper §3: OCP "lazy synchronisation" and AXI "exclusive access"
//! implement non-blocking synchronisation between masters, unlike the older
//! `READEX`/`LOCK` transactions. In the NoC, the legacy pair impacts the
//! *transport* level (switches pin paths), while the modern pair needs only
//! one user-defined packet bit plus *state information in the NIU* — this
//! module is that state.

use crate::node::MstAddr;
use std::fmt;

/// Result of an exclusive-write / write-conditional attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum ExclusiveOutcome {
    /// The reservation held: the write was performed ([`crate::RespStatus::ExOkay`]).
    Success,
    /// The reservation was lost: the write was *not* performed
    /// ([`crate::RespStatus::ExFail`] / plain `OKAY` on AXI).
    Fail,
}

impl ExclusiveOutcome {
    /// `true` on success.
    pub const fn is_success(self) -> bool {
        matches!(self, ExclusiveOutcome::Success)
    }
}

impl fmt::Display for ExclusiveOutcome {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ExclusiveOutcome::Success => write!(f, "EXOKAY"),
            ExclusiveOutcome::Fail => write!(f, "EXFAIL"),
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Reservation {
    master: MstAddr,
    granule: u64,
}

/// A target-NIU exclusive monitor in the style of the AXI exclusive
/// monitor / OCP synchronisation state.
///
/// The monitor tracks, per master, one reserved address granule. An
/// exclusive read (or read-linked) *arms* a reservation; an exclusive
/// write (or write-conditional) *succeeds* only if the master's
/// reservation on that granule is still intact. Any ordinary write —
/// from anyone — to a reserved granule clears the reservations covering
/// it, as does a successful exclusive write from another master.
///
/// Capacity is bounded (`max_reservations`): the oldest reservation is
/// evicted when full, which is safe (an evicted master simply fails its
/// exclusive write and retries) and keeps NIU state — and hence gate
/// count — fixed.
///
/// # Examples
///
/// ```
/// use noc_transaction::{ExclusiveMonitor, ExclusiveOutcome, MstAddr};
/// let mut mon = ExclusiveMonitor::new(64, 4);
/// let a = MstAddr::new(0);
/// let b = MstAddr::new(1);
/// mon.arm(a, 0x1000);
/// mon.arm(b, 0x1000);
/// // B steals the semaphore first:
/// assert_eq!(mon.try_exclusive_write(b, 0x1000), ExclusiveOutcome::Success);
/// // A's reservation was broken by B's winning write:
/// assert_eq!(mon.try_exclusive_write(a, 0x1000), ExclusiveOutcome::Fail);
/// ```
#[derive(Debug, Clone)]
pub struct ExclusiveMonitor {
    granule_bytes: u64,
    max_reservations: usize,
    /// (slot age ordering maintained by Vec order: oldest first)
    reservations: Vec<Reservation>,
    successes: u64,
    failures: u64,
}

impl ExclusiveMonitor {
    /// Creates a monitor with the given reservation granule (power of two,
    /// e.g. 64 bytes — addresses are aligned down to it) and reservation
    /// capacity.
    ///
    /// # Panics
    ///
    /// Panics if `granule_bytes` is not a power of two or
    /// `max_reservations` is zero.
    pub fn new(granule_bytes: u64, max_reservations: usize) -> Self {
        assert!(
            granule_bytes.is_power_of_two(),
            "granule must be a power of two"
        );
        assert!(max_reservations > 0, "capacity must be non-zero");
        ExclusiveMonitor {
            granule_bytes,
            max_reservations,
            reservations: Vec::new(),
            successes: 0,
            failures: 0,
        }
    }

    fn granule(&self, addr: u64) -> u64 {
        addr & !(self.granule_bytes - 1)
    }

    /// Arms (or re-arms) `master`'s reservation at `addr`'s granule.
    /// Called on `ReadExclusive` / `ReadLinked`.
    pub fn arm(&mut self, master: MstAddr, addr: u64) {
        let granule = self.granule(addr);
        // A master holds at most one reservation (AXI-style single monitor
        // per master): re-arming moves it.
        self.reservations.retain(|r| r.master != master);
        if self.reservations.len() == self.max_reservations {
            self.reservations.remove(0); // evict oldest
        }
        self.reservations.push(Reservation { master, granule });
    }

    /// Returns `true` if `master` currently holds a reservation covering
    /// `addr`.
    pub fn is_armed(&self, master: MstAddr, addr: u64) -> bool {
        let granule = self.granule(addr);
        self.reservations
            .iter()
            .any(|r| r.master == master && r.granule == granule)
    }

    /// Attempts an exclusive write / write-conditional by `master` at
    /// `addr`. On success the write proceeds and *all* reservations on the
    /// granule (including other masters') are cleared; on failure nothing
    /// changes except the failure count.
    pub fn try_exclusive_write(&mut self, master: MstAddr, addr: u64) -> ExclusiveOutcome {
        if self.is_armed(master, addr) {
            let granule = self.granule(addr);
            self.reservations.retain(|r| r.granule != granule);
            self.successes += 1;
            ExclusiveOutcome::Success
        } else {
            self.failures += 1;
            ExclusiveOutcome::Fail
        }
    }

    /// Observes an ordinary (non-exclusive) write at `addr`, clearing any
    /// reservation on its granule. Reads never clear reservations.
    pub fn observe_write(&mut self, addr: u64) {
        let granule = self.granule(addr);
        self.reservations.retain(|r| r.granule != granule);
    }

    /// Number of live reservations.
    pub fn live_reservations(&self) -> usize {
        self.reservations.len()
    }

    /// Successful exclusive writes observed.
    pub fn successes(&self) -> u64 {
        self.successes
    }

    /// Failed exclusive writes observed.
    pub fn failures(&self) -> u64 {
        self.failures
    }
}

/// Legacy blocking lock state at a target: at most one master owns the
/// lock; requests from others while locked must be stalled by the fabric
/// (that is the transport-layer impact the paper contrasts against the
/// exclusive service bit).
///
/// # Examples
///
/// ```
/// use noc_transaction::{LockArbiter, MstAddr};
/// let mut lock = LockArbiter::new();
/// assert!(lock.try_lock(MstAddr::new(0)));
/// assert!(!lock.try_lock(MstAddr::new(1)));   // B blocked
/// assert!(lock.try_lock(MstAddr::new(0)));    // re-entrant for owner
/// lock.unlock(MstAddr::new(0)).unwrap();
/// assert!(lock.try_lock(MstAddr::new(1)));
/// ```
#[derive(Debug, Clone, Default)]
pub struct LockArbiter {
    owner: Option<MstAddr>,
    lock_count: u64,
    contended: u64,
}

/// Error unlocking a lock not held by the caller.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct NotOwner {
    /// Who attempted the unlock.
    pub master: MstAddr,
    /// Actual owner, if any.
    pub owner: Option<MstAddr>,
}

impl fmt::Display for NotOwner {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.owner {
            Some(o) => write!(f, "{} tried to unlock a lock owned by {o}", self.master),
            None => write!(f, "{} tried to unlock an unheld lock", self.master),
        }
    }
}

impl std::error::Error for NotOwner {}

impl LockArbiter {
    /// Creates an unheld lock.
    pub fn new() -> Self {
        LockArbiter::default()
    }

    /// Attempts to take (or re-enter) the lock for `master`. Returns
    /// `false` — the caller must stall — when another master holds it.
    pub fn try_lock(&mut self, master: MstAddr) -> bool {
        match self.owner {
            None => {
                self.owner = Some(master);
                self.lock_count += 1;
                true
            }
            Some(o) if o == master => true,
            Some(_) => {
                self.contended += 1;
                false
            }
        }
    }

    /// Releases the lock.
    ///
    /// # Errors
    ///
    /// Returns [`NotOwner`] if `master` does not hold the lock.
    pub fn unlock(&mut self, master: MstAddr) -> Result<(), NotOwner> {
        match self.owner {
            Some(o) if o == master => {
                self.owner = None;
                Ok(())
            }
            owner => Err(NotOwner { master, owner }),
        }
    }

    /// Current owner, if locked.
    pub fn owner(&self) -> Option<MstAddr> {
        self.owner
    }

    /// Returns `true` while a master holds the lock.
    pub fn is_locked(&self) -> bool {
        self.owner.is_some()
    }

    /// Number of successful lock acquisitions.
    pub fn acquisitions(&self) -> u64 {
        self.lock_count
    }

    /// Number of blocked attempts (a congestion indicator).
    pub fn contended_attempts(&self) -> u64 {
        self.contended
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn m(n: u16) -> MstAddr {
        MstAddr::new(n)
    }

    #[test]
    fn arm_then_succeed() {
        let mut mon = ExclusiveMonitor::new(64, 4);
        mon.arm(m(0), 0x100);
        assert!(mon.is_armed(m(0), 0x100));
        assert_eq!(
            mon.try_exclusive_write(m(0), 0x100),
            ExclusiveOutcome::Success
        );
        // consumed
        assert!(!mon.is_armed(m(0), 0x100));
        assert_eq!(mon.successes(), 1);
    }

    #[test]
    fn unarmed_write_fails() {
        let mut mon = ExclusiveMonitor::new(64, 4);
        assert_eq!(mon.try_exclusive_write(m(0), 0x100), ExclusiveOutcome::Fail);
        assert_eq!(mon.failures(), 1);
    }

    #[test]
    fn granule_alignment_shares_reservation() {
        let mut mon = ExclusiveMonitor::new(64, 4);
        mon.arm(m(0), 0x100);
        // same 64-byte granule
        assert!(mon.is_armed(m(0), 0x13F));
        // different granule
        assert!(!mon.is_armed(m(0), 0x140));
    }

    #[test]
    fn ordinary_write_breaks_reservation() {
        let mut mon = ExclusiveMonitor::new(64, 4);
        mon.arm(m(0), 0x100);
        mon.observe_write(0x120); // same granule
        assert_eq!(mon.try_exclusive_write(m(0), 0x100), ExclusiveOutcome::Fail);
    }

    #[test]
    fn write_to_other_granule_preserves_reservation() {
        let mut mon = ExclusiveMonitor::new(64, 4);
        mon.arm(m(0), 0x100);
        mon.observe_write(0x200);
        assert_eq!(
            mon.try_exclusive_write(m(0), 0x100),
            ExclusiveOutcome::Success
        );
    }

    #[test]
    fn winning_exclusive_breaks_competitors() {
        let mut mon = ExclusiveMonitor::new(64, 4);
        mon.arm(m(0), 0x40);
        mon.arm(m(1), 0x40);
        assert_eq!(
            mon.try_exclusive_write(m(1), 0x40),
            ExclusiveOutcome::Success
        );
        assert_eq!(mon.try_exclusive_write(m(0), 0x40), ExclusiveOutcome::Fail);
    }

    #[test]
    fn one_reservation_per_master() {
        let mut mon = ExclusiveMonitor::new(64, 4);
        mon.arm(m(0), 0x40);
        mon.arm(m(0), 0x80); // moves the reservation
        assert!(!mon.is_armed(m(0), 0x40));
        assert!(mon.is_armed(m(0), 0x80));
        assert_eq!(mon.live_reservations(), 1);
    }

    #[test]
    fn capacity_evicts_oldest() {
        let mut mon = ExclusiveMonitor::new(64, 2);
        mon.arm(m(0), 0x0);
        mon.arm(m(1), 0x40);
        mon.arm(m(2), 0x80); // evicts m0
        assert!(!mon.is_armed(m(0), 0x0));
        assert!(mon.is_armed(m(1), 0x40));
        assert!(mon.is_armed(m(2), 0x80));
        assert_eq!(mon.live_reservations(), 2);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_granule_panics() {
        ExclusiveMonitor::new(48, 4);
    }

    #[test]
    fn lock_exclusion_and_reentry() {
        let mut lock = LockArbiter::new();
        assert!(!lock.is_locked());
        assert!(lock.try_lock(m(0)));
        assert!(lock.is_locked());
        assert_eq!(lock.owner(), Some(m(0)));
        assert!(lock.try_lock(m(0))); // re-entrant
        assert!(!lock.try_lock(m(1)));
        assert_eq!(lock.contended_attempts(), 1);
        lock.unlock(m(0)).unwrap();
        assert!(lock.try_lock(m(1)));
        assert_eq!(lock.acquisitions(), 2);
    }

    #[test]
    fn unlock_by_non_owner_fails() {
        let mut lock = LockArbiter::new();
        lock.try_lock(m(0));
        let err = lock.unlock(m(1)).unwrap_err();
        assert_eq!(err.owner, Some(m(0)));
        assert!(err.to_string().contains("M1"));
        // still locked by m0
        assert_eq!(lock.owner(), Some(m(0)));
        let err2 = LockArbiter::new().unlock(m(2)).unwrap_err();
        assert_eq!(err2.owner, None);
    }

    #[test]
    fn outcome_display_and_predicate() {
        assert!(ExclusiveOutcome::Success.is_success());
        assert!(!ExclusiveOutcome::Fail.is_success());
        assert_eq!(ExclusiveOutcome::Success.to_string(), "EXOKAY");
    }
}
