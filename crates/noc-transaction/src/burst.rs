//! Canonical burst descriptions.
//!
//! Every socket has its own burst vocabulary (AHB `INCR4/8/16`, `WRAP4/8/16`;
//! AXI `FIXED/INCR/WRAP` with 1–16 beats; OCP precise bursts; BVCI cell
//! chains). The transaction layer folds all of them into one canonical
//! descriptor: a [`BurstKind`], a beat size in bytes, and a beat count.
//! NIUs translate socket encodings to and from this form.

use std::fmt;

/// Burst address progression, the superset of socket burst kinds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BurstKind {
    /// Incrementing addresses (AHB `INCR*`, AXI `INCR`, OCP incrementing,
    /// BVCI contiguous cells).
    #[default]
    Incr,
    /// Wrapping at the burst-size boundary (AHB `WRAP*`, AXI `WRAP`,
    /// cache-line fills).
    Wrap,
    /// Fixed address for every beat (AXI `FIXED`, FIFO draining).
    Fixed,
    /// Streaming: address meaningless after the first beat (OCP `STRM`,
    /// proprietary streaming sockets).
    Stream,
}

impl fmt::Display for BurstKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            BurstKind::Incr => "INCR",
            BurstKind::Wrap => "WRAP",
            BurstKind::Fixed => "FIXED",
            BurstKind::Stream => "STRM",
        };
        f.write_str(s)
    }
}

/// Errors from burst validation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BurstError {
    /// Beat size must be a power of two between 1 and 128 bytes.
    InvalidBeatSize(u32),
    /// Beat count must be between 1 and 256.
    InvalidBeatCount(u32),
    /// Wrapping bursts require a power-of-two beat count.
    WrapNotPowerOfTwo(u32),
}

impl fmt::Display for BurstError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BurstError::InvalidBeatSize(s) => {
                write!(
                    f,
                    "invalid beat size {s}: must be a power of two in 1..=128"
                )
            }
            BurstError::InvalidBeatCount(n) => {
                write!(f, "invalid beat count {n}: must be in 1..=256")
            }
            BurstError::WrapNotPowerOfTwo(n) => {
                write!(f, "wrapping burst beat count {n} is not a power of two")
            }
        }
    }
}

impl std::error::Error for BurstError {}

/// A canonical burst: `beats` transfers of `beat_bytes` each, with a
/// [`BurstKind`] address progression.
///
/// # Examples
///
/// ```
/// use noc_transaction::{Burst, BurstKind};
/// let b = Burst::wrap(4, 8)?; // 4 beats of 8 bytes, wrapping
/// assert_eq!(b.total_bytes(), 32);
/// let addrs: Vec<u64> = b.beat_addresses(0x38).collect();
/// assert_eq!(addrs, vec![0x38, 0x20, 0x28, 0x30]); // wraps at 32-byte boundary
/// # Ok::<(), noc_transaction::BurstError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Burst {
    kind: BurstKind,
    beat_bytes: u32,
    beats: u32,
}

impl Burst {
    /// A single beat of `beat_bytes` bytes.
    ///
    /// # Errors
    ///
    /// Returns an error if `beat_bytes` is not a power of two in 1..=128.
    pub fn single(beat_bytes: u32) -> Result<Self, BurstError> {
        Burst::new(BurstKind::Incr, beat_bytes, 1)
    }

    /// An incrementing burst.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid beat size or count.
    pub fn incr(beats: u32, beat_bytes: u32) -> Result<Self, BurstError> {
        Burst::new(BurstKind::Incr, beat_bytes, beats)
    }

    /// A wrapping burst (power-of-two beats required).
    ///
    /// # Errors
    ///
    /// Returns an error for invalid parameters, including non-power-of-two
    /// beat counts.
    pub fn wrap(beats: u32, beat_bytes: u32) -> Result<Self, BurstError> {
        Burst::new(BurstKind::Wrap, beat_bytes, beats)
    }

    /// A fixed-address burst.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid beat size or count.
    pub fn fixed(beats: u32, beat_bytes: u32) -> Result<Self, BurstError> {
        Burst::new(BurstKind::Fixed, beat_bytes, beats)
    }

    /// A streaming burst.
    ///
    /// # Errors
    ///
    /// Returns an error for invalid beat size or count.
    pub fn stream(beats: u32, beat_bytes: u32) -> Result<Self, BurstError> {
        Burst::new(BurstKind::Stream, beat_bytes, beats)
    }

    /// General constructor with full validation.
    ///
    /// # Errors
    ///
    /// - [`BurstError::InvalidBeatSize`] unless `beat_bytes` is a power of
    ///   two in `1..=128`;
    /// - [`BurstError::InvalidBeatCount`] unless `beats` is in `1..=256`;
    /// - [`BurstError::WrapNotPowerOfTwo`] for wrapping bursts with a
    ///   non-power-of-two beat count.
    pub fn new(kind: BurstKind, beat_bytes: u32, beats: u32) -> Result<Self, BurstError> {
        if !(1..=128).contains(&beat_bytes) || !beat_bytes.is_power_of_two() {
            return Err(BurstError::InvalidBeatSize(beat_bytes));
        }
        if !(1..=256).contains(&beats) {
            return Err(BurstError::InvalidBeatCount(beats));
        }
        if kind == BurstKind::Wrap && !beats.is_power_of_two() {
            return Err(BurstError::WrapNotPowerOfTwo(beats));
        }
        Ok(Burst {
            kind,
            beat_bytes,
            beats,
        })
    }

    /// The address progression kind.
    pub const fn kind(self) -> BurstKind {
        self.kind
    }

    /// Bytes per beat.
    pub const fn beat_bytes(self) -> u32 {
        self.beat_bytes
    }

    /// Number of beats.
    pub const fn beats(self) -> u32 {
        self.beats
    }

    /// Total payload bytes carried by the burst.
    pub const fn total_bytes(self) -> u64 {
        self.beat_bytes as u64 * self.beats as u64
    }

    /// Iterator over the address of each beat, starting from `base`.
    ///
    /// Addresses are aligned down to the beat size first (matching AXI/AHB
    /// behaviour where the low address bits select byte lanes, not beats).
    pub fn beat_addresses(self, base: u64) -> BeatAddresses {
        BeatAddresses {
            burst: self,
            base,
            next: 0,
        }
    }

    /// Splits this burst into chunks of at most `max_beats` beats each,
    /// returning `(start_address, burst)` pairs. Used by NIUs to chop long
    /// socket bursts into bounded NoC packets, and by bridges that clamp
    /// burst length.
    ///
    /// Wrapping bursts are converted to incrementing chunks covering the
    /// same addresses in the same order (standard bridge behaviour).
    ///
    /// # Panics
    ///
    /// Panics if `max_beats` is zero.
    pub fn chop(self, base: u64, max_beats: u32) -> Vec<(u64, Burst)> {
        assert!(max_beats > 0, "max_beats must be non-zero");
        if self.beats <= max_beats && self.kind != BurstKind::Wrap {
            return vec![(base, self)];
        }
        let addrs: Vec<u64> = self.beat_addresses(base).collect();
        let kind = match self.kind {
            BurstKind::Wrap => BurstKind::Incr,
            k => k,
        };
        let mut out = Vec::new();
        let mut i = 0usize;
        while i < addrs.len() {
            // Greedily take beats whose addresses continue the chunk's
            // progression; a wrap discontinuity starts a new chunk.
            let start = addrs[i];
            let mut n = 1u32;
            while n < max_beats && i + (n as usize) < addrs.len() {
                let expected = match kind {
                    BurstKind::Incr => start + n as u64 * self.beat_bytes as u64,
                    BurstKind::Fixed | BurstKind::Stream => start,
                    BurstKind::Wrap => unreachable!("wrap converted to incr above"),
                };
                if addrs[i + n as usize] != expected {
                    break;
                }
                n += 1;
            }
            let chunk =
                Burst::new(kind, self.beat_bytes, n).expect("chunk parameters already validated");
            out.push((start, chunk));
            i += n as usize;
        }
        out
    }
}

impl Default for Burst {
    fn default() -> Self {
        Burst {
            kind: BurstKind::Incr,
            beat_bytes: 4,
            beats: 1,
        }
    }
}

impl fmt::Display for Burst {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}x{}B {}", self.beats, self.beat_bytes, self.kind)
    }
}

/// Iterator over burst beat addresses. Created by [`Burst::beat_addresses`].
#[derive(Debug, Clone)]
pub struct BeatAddresses {
    burst: Burst,
    base: u64,
    next: u32,
}

impl Iterator for BeatAddresses {
    type Item = u64;

    fn next(&mut self) -> Option<u64> {
        if self.next >= self.burst.beats {
            return None;
        }
        let bb = self.burst.beat_bytes as u64;
        let aligned = self.base & !(bb - 1);
        let addr = match self.burst.kind {
            BurstKind::Incr => aligned + self.next as u64 * bb,
            BurstKind::Fixed | BurstKind::Stream => aligned,
            BurstKind::Wrap => {
                let span = bb * self.burst.beats as u64;
                let low = aligned & !(span - 1);
                let offset = (aligned - low + self.next as u64 * bb) % span;
                low + offset
            }
        };
        self.next += 1;
        Some(addr)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let rem = (self.burst.beats - self.next) as usize;
        (rem, Some(rem))
    }
}

impl ExactSizeIterator for BeatAddresses {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn validation_rejects_bad_parameters() {
        assert_eq!(Burst::incr(4, 3), Err(BurstError::InvalidBeatSize(3)));
        assert_eq!(Burst::incr(4, 0), Err(BurstError::InvalidBeatSize(0)));
        assert_eq!(Burst::incr(4, 256), Err(BurstError::InvalidBeatSize(256)));
        assert_eq!(Burst::incr(0, 4), Err(BurstError::InvalidBeatCount(0)));
        assert_eq!(Burst::incr(300, 4), Err(BurstError::InvalidBeatCount(300)));
        assert_eq!(Burst::wrap(3, 4), Err(BurstError::WrapNotPowerOfTwo(3)));
    }

    #[test]
    fn incr_addresses() {
        let b = Burst::incr(4, 4).unwrap();
        let addrs: Vec<u64> = b.beat_addresses(0x100).collect();
        assert_eq!(addrs, vec![0x100, 0x104, 0x108, 0x10C]);
    }

    #[test]
    fn incr_aligns_base_down() {
        let b = Burst::incr(2, 8).unwrap();
        let addrs: Vec<u64> = b.beat_addresses(0x103).collect();
        assert_eq!(addrs, vec![0x100, 0x108]);
    }

    #[test]
    fn wrap_addresses_wrap_at_boundary() {
        // Classic cache-line wrap: 4 beats x 8 bytes starting mid-line.
        let b = Burst::wrap(4, 8).unwrap();
        let addrs: Vec<u64> = b.beat_addresses(0x38).collect();
        assert_eq!(addrs, vec![0x38, 0x20, 0x28, 0x30]);
    }

    #[test]
    fn wrap_from_aligned_base_is_sequential() {
        let b = Burst::wrap(4, 4).unwrap();
        let addrs: Vec<u64> = b.beat_addresses(0x20).collect();
        assert_eq!(addrs, vec![0x20, 0x24, 0x28, 0x2C]);
    }

    #[test]
    fn fixed_and_stream_hold_address() {
        for b in [Burst::fixed(3, 4).unwrap(), Burst::stream(3, 4).unwrap()] {
            let addrs: Vec<u64> = b.beat_addresses(0x40).collect();
            assert_eq!(addrs, vec![0x40, 0x40, 0x40]);
        }
    }

    #[test]
    fn total_bytes() {
        assert_eq!(Burst::incr(16, 8).unwrap().total_bytes(), 128);
        assert_eq!(Burst::single(4).unwrap().total_bytes(), 4);
    }

    #[test]
    fn chop_short_burst_is_identity() {
        let b = Burst::incr(4, 4).unwrap();
        let chunks = b.chop(0x100, 8);
        assert_eq!(chunks, vec![(0x100, b)]);
    }

    #[test]
    fn chop_long_incr_burst() {
        let b = Burst::incr(16, 4).unwrap();
        let chunks = b.chop(0x0, 4);
        assert_eq!(chunks.len(), 4);
        assert_eq!(chunks[0], (0x0, Burst::incr(4, 4).unwrap()));
        assert_eq!(chunks[1], (0x10, Burst::incr(4, 4).unwrap()));
        assert_eq!(chunks[3], (0x30, Burst::incr(4, 4).unwrap()));
    }

    #[test]
    fn chop_wrap_burst_splits_at_discontinuity() {
        let b = Burst::wrap(8, 4).unwrap();
        // base 0x14 → addresses 14,18,1C,0,4,8,C,10
        let chunks = b.chop(0x14, 8);
        assert_eq!(chunks.len(), 2);
        assert_eq!(chunks[0].0, 0x14);
        assert_eq!(chunks[0].1.beats(), 3);
        assert_eq!(chunks[1].0, 0x0);
        assert_eq!(chunks[1].1.beats(), 5);
        // Covered addresses are preserved in order.
        let mut covered = Vec::new();
        for (base, c) in &chunks {
            covered.extend(c.beat_addresses(*base));
        }
        assert_eq!(covered, b.beat_addresses(0x14).collect::<Vec<_>>());
    }

    #[test]
    fn chop_fixed_burst_keeps_address() {
        let b = Burst::fixed(10, 4).unwrap();
        let chunks = b.chop(0x80, 4);
        assert_eq!(chunks.len(), 3);
        assert!(chunks.iter().all(|(a, _)| *a == 0x80));
        let beats: u32 = chunks.iter().map(|(_, c)| c.beats()).sum();
        assert_eq!(beats, 10);
    }

    #[test]
    fn beat_addresses_is_exact_size() {
        let b = Burst::incr(5, 4).unwrap();
        let it = b.beat_addresses(0);
        assert_eq!(it.len(), 5);
    }

    #[test]
    fn display_formats() {
        assert_eq!(Burst::incr(4, 8).unwrap().to_string(), "4x8B INCR");
        assert_eq!(BurstKind::Wrap.to_string(), "WRAP");
        let e = BurstError::WrapNotPowerOfTwo(3);
        assert!(e.to_string().contains("power of two"));
    }

    #[test]
    fn default_burst_is_single_word() {
        let b = Burst::default();
        assert_eq!(b.beats(), 1);
        assert_eq!(b.beat_bytes(), 4);
    }
}
