//! Endianness conversion.
//!
//! Paper §3 lists endianness among the basic VC incompatibilities the
//! transaction layer must absorb. The NoC canonical data representation is
//! little-endian byte lanes; an NIU fronting a big-endian IP swaps lanes
//! word-by-word on the way in and out.

use std::fmt;

/// Byte-lane ordering of a socket.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Endianness {
    /// Little-endian: matches the NoC canonical form; conversion is a
    /// no-op.
    #[default]
    Little,
    /// Big-endian: byte lanes are swapped within each beat word.
    Big,
}

impl Endianness {
    /// Converts `data` between socket and canonical form in place, using
    /// `word_bytes` as the swap unit (the socket data-bus width).
    ///
    /// The conversion is an involution: applying it twice restores the
    /// original. Trailing bytes beyond the last full word are swapped as a
    /// shorter group (matching how narrow transfers present on wide buses).
    ///
    /// # Panics
    ///
    /// Panics if `word_bytes` is zero or not a power of two.
    pub fn convert(self, data: &mut [u8], word_bytes: usize) {
        assert!(
            word_bytes > 0 && word_bytes.is_power_of_two(),
            "word size must be a non-zero power of two"
        );
        if self == Endianness::Little {
            return;
        }
        for chunk in data.chunks_mut(word_bytes) {
            chunk.reverse();
        }
    }

    /// Returns converted copy of `data` (see [`Endianness::convert`]).
    ///
    /// # Panics
    ///
    /// Panics if `word_bytes` is zero or not a power of two.
    pub fn converted(self, data: &[u8], word_bytes: usize) -> Vec<u8> {
        let mut out = data.to_vec();
        self.convert(&mut out, word_bytes);
        out
    }
}

impl fmt::Display for Endianness {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Endianness::Little => write!(f, "little-endian"),
            Endianness::Big => write!(f, "big-endian"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn little_endian_is_identity() {
        let mut data = vec![1, 2, 3, 4];
        Endianness::Little.convert(&mut data, 4);
        assert_eq!(data, vec![1, 2, 3, 4]);
    }

    #[test]
    fn big_endian_swaps_words() {
        let data = vec![1, 2, 3, 4, 5, 6, 7, 8];
        let out = Endianness::Big.converted(&data, 4);
        assert_eq!(out, vec![4, 3, 2, 1, 8, 7, 6, 5]);
    }

    #[test]
    fn conversion_is_involution() {
        let data: Vec<u8> = (0..16).collect();
        let once = Endianness::Big.converted(&data, 8);
        let twice = Endianness::Big.converted(&once, 8);
        assert_eq!(twice, data);
    }

    #[test]
    fn trailing_partial_word_swapped_as_group() {
        let data = vec![1, 2, 3, 4, 5, 6];
        let out = Endianness::Big.converted(&data, 4);
        assert_eq!(out, vec![4, 3, 2, 1, 6, 5]);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn bad_word_size_panics() {
        Endianness::Big.converted(&[1, 2, 3], 3);
    }

    #[test]
    fn display() {
        assert_eq!(Endianness::Little.to_string(), "little-endian");
        assert_eq!(Endianness::Big.to_string(), "big-endian");
    }
}
