//! "NoC services": optional user-defined packet bits.
//!
//! Paper §3 closes with the observation that AXI/OCP exclusive access
//! *"only requires adding a single user-defined bit in the packets, and
//! state information in the NIU. This optional packet bit becomes simply
//! part of a family of similar 'NoC services' that can be activated in a
//! particular NoC configuration."*
//!
//! [`ServiceBits`] is that family: a 16-bit field of optional flags rider
//! on every packet. [`ServiceConfig`] describes which services a given NoC
//! instance activates, and therefore how many header bits the packet
//! format actually spends — the transport layer carries the field opaquely
//! either way.

use std::fmt;
use std::ops::{BitAnd, BitOr, BitOrAssign};

/// A set of optional per-packet service flags.
///
/// # Examples
///
/// ```
/// use noc_transaction::ServiceBits;
/// let s = ServiceBits::EXCLUSIVE | ServiceBits::SECURE;
/// assert!(s.contains(ServiceBits::EXCLUSIVE));
/// assert!(!s.contains(ServiceBits::LOCKED));
/// assert_eq!(s.bits().count_ones(), 2);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct ServiceBits(u16);

impl ServiceBits {
    /// No services.
    pub const NONE: ServiceBits = ServiceBits(0);
    /// The exclusive-access bit (AXI exclusive / OCP lazy sync). One bit,
    /// NIU state only — no transport impact (paper §3).
    pub const EXCLUSIVE: ServiceBits = ServiceBits(1 << 0);
    /// Legacy lock indication (READEX/LOCK). Transport-visible: switches
    /// pin paths while a locked sequence is in flight.
    pub const LOCKED: ServiceBits = ServiceBits(1 << 1);
    /// Secure-world indication (TrustZone-style filtering at target NIUs).
    pub const SECURE: ServiceBits = ServiceBits(1 << 2);
    /// Posted-write indication (no socket-level response).
    pub const POSTED: ServiceBits = ServiceBits(1 << 3);
    /// First user-defined bit available to socket-specific features.
    pub const USER0: ServiceBits = ServiceBits(1 << 8);
    /// Second user-defined bit.
    pub const USER1: ServiceBits = ServiceBits(1 << 9);

    /// Builds a set from raw bits.
    pub const fn from_bits(bits: u16) -> Self {
        ServiceBits(bits)
    }

    /// Raw bit representation (as carried in the packet header).
    pub const fn bits(self) -> u16 {
        self.0
    }

    /// Returns `true` if every bit of `other` is set in `self`.
    pub const fn contains(self, other: ServiceBits) -> bool {
        self.0 & other.0 == other.0
    }

    /// Returns `true` if no bits are set.
    pub const fn is_empty(self) -> bool {
        self.0 == 0
    }

    /// Set union.
    #[must_use]
    pub const fn union(self, other: ServiceBits) -> ServiceBits {
        ServiceBits(self.0 | other.0)
    }

    /// Removes the bits of `other`.
    #[must_use]
    pub const fn without(self, other: ServiceBits) -> ServiceBits {
        ServiceBits(self.0 & !other.0)
    }
}

impl BitOr for ServiceBits {
    type Output = ServiceBits;
    fn bitor(self, rhs: ServiceBits) -> ServiceBits {
        self.union(rhs)
    }
}

impl BitOrAssign for ServiceBits {
    fn bitor_assign(&mut self, rhs: ServiceBits) {
        self.0 |= rhs.0;
    }
}

impl BitAnd for ServiceBits {
    type Output = ServiceBits;
    fn bitand(self, rhs: ServiceBits) -> ServiceBits {
        ServiceBits(self.0 & rhs.0)
    }
}

impl fmt::Display for ServiceBits {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_empty() {
            return write!(f, "none");
        }
        let mut first = true;
        let mut put = |f: &mut fmt::Formatter<'_>, s: &str| -> fmt::Result {
            if !first {
                write!(f, "+")?;
            }
            first = false;
            f.write_str(s)
        };
        if self.contains(ServiceBits::EXCLUSIVE) {
            put(f, "excl")?;
        }
        if self.contains(ServiceBits::LOCKED) {
            put(f, "lock")?;
        }
        if self.contains(ServiceBits::SECURE) {
            put(f, "secure")?;
        }
        if self.contains(ServiceBits::POSTED) {
            put(f, "posted")?;
        }
        if self.contains(ServiceBits::USER0) {
            put(f, "user0")?;
        }
        if self.contains(ServiceBits::USER1) {
            put(f, "user1")?;
        }
        Ok(())
    }
}

/// Which services a NoC instance activates, and hence how many optional
/// header bits its packet format carries.
///
/// Activating a service widens packets by its bit cost but never touches
/// switch logic (except `LOCKED`, whose *semantics* involve transport —
/// the bit itself is still just a bit).
///
/// # Examples
///
/// ```
/// use noc_transaction::{ServiceBits, ServiceConfig};
/// let cfg = ServiceConfig::new()
///     .enable(ServiceBits::EXCLUSIVE)
///     .enable(ServiceBits::SECURE);
/// assert_eq!(cfg.header_bits(), 2);
/// assert!(cfg.is_enabled(ServiceBits::EXCLUSIVE));
/// assert!(cfg.check(ServiceBits::EXCLUSIVE).is_ok());
/// assert!(cfg.check(ServiceBits::LOCKED).is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ServiceConfig {
    enabled: ServiceBits,
}

/// Error produced when a packet requests a service the NoC configuration
/// does not activate.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ServiceDisabled {
    /// The bits that were requested but not enabled.
    pub missing: ServiceBits,
}

impl fmt::Display for ServiceDisabled {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "service(s) [{}] not enabled in this NoC configuration",
            self.missing
        )
    }
}

impl std::error::Error for ServiceDisabled {}

impl ServiceConfig {
    /// A configuration with no optional services.
    pub fn new() -> Self {
        ServiceConfig::default()
    }

    /// Enables a service (builder style).
    #[must_use]
    pub fn enable(mut self, service: ServiceBits) -> Self {
        self.enabled |= service;
        self
    }

    /// Returns `true` if all bits of `service` are enabled.
    pub fn is_enabled(self, service: ServiceBits) -> bool {
        self.enabled.contains(service)
    }

    /// The enabled set.
    pub fn enabled(self) -> ServiceBits {
        self.enabled
    }

    /// Number of optional header bits this configuration spends.
    pub fn header_bits(self) -> u32 {
        self.enabled.bits().count_ones()
    }

    /// Validates that `requested` only uses enabled services.
    ///
    /// # Errors
    ///
    /// Returns [`ServiceDisabled`] naming the missing bits.
    pub fn check(self, requested: ServiceBits) -> Result<(), ServiceDisabled> {
        let missing = requested.without(self.enabled);
        if missing.is_empty() {
            Ok(())
        } else {
            Err(ServiceDisabled { missing })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bit_algebra() {
        let s = ServiceBits::EXCLUSIVE | ServiceBits::POSTED;
        assert!(s.contains(ServiceBits::EXCLUSIVE));
        assert!(s.contains(ServiceBits::POSTED));
        assert!(!s.contains(ServiceBits::SECURE));
        assert_eq!(s.without(ServiceBits::POSTED), ServiceBits::EXCLUSIVE);
        assert_eq!(s & ServiceBits::EXCLUSIVE, ServiceBits::EXCLUSIVE);
        assert!((s & ServiceBits::SECURE).is_empty());
    }

    #[test]
    fn bitor_assign() {
        let mut s = ServiceBits::NONE;
        s |= ServiceBits::LOCKED;
        assert!(s.contains(ServiceBits::LOCKED));
    }

    #[test]
    fn from_bits_round_trip() {
        let s = ServiceBits::from_bits(0x0103);
        assert!(s.contains(ServiceBits::EXCLUSIVE));
        assert!(s.contains(ServiceBits::LOCKED));
        assert!(s.contains(ServiceBits::USER0));
        assert_eq!(s.bits(), 0x0103);
    }

    #[test]
    fn config_header_bit_accounting() {
        let cfg = ServiceConfig::new();
        assert_eq!(cfg.header_bits(), 0);
        let cfg = cfg.enable(ServiceBits::EXCLUSIVE);
        assert_eq!(cfg.header_bits(), 1);
        let cfg = cfg.enable(ServiceBits::SECURE).enable(ServiceBits::USER0);
        assert_eq!(cfg.header_bits(), 3);
        // re-enabling is idempotent
        let cfg = cfg.enable(ServiceBits::SECURE);
        assert_eq!(cfg.header_bits(), 3);
    }

    #[test]
    fn config_check_rejects_disabled() {
        let cfg = ServiceConfig::new().enable(ServiceBits::EXCLUSIVE);
        assert!(cfg.check(ServiceBits::EXCLUSIVE).is_ok());
        assert!(cfg.check(ServiceBits::NONE).is_ok());
        let err = cfg
            .check(ServiceBits::EXCLUSIVE | ServiceBits::LOCKED)
            .unwrap_err();
        assert_eq!(err.missing, ServiceBits::LOCKED);
        assert!(err.to_string().contains("lock"));
    }

    #[test]
    fn display_lists_flags() {
        assert_eq!(ServiceBits::NONE.to_string(), "none");
        let s = ServiceBits::EXCLUSIVE | ServiceBits::USER1;
        assert_eq!(s.to_string(), "excl+user1");
    }
}
