//! Canonical transaction opcodes and response statuses.
//!
//! The opcode set is the union of what the supported sockets need, folded
//! into neutral primitives: plain reads/writes, posted writes (OCP writes
//! without responses), both generations of synchronisation primitives —
//! legacy blocking `ReadLocked`/`WriteUnlock` (AHB `HMASTLOCK`, VCI
//! `READEX`/write-unlock) and modern non-blocking `ReadExclusive`/
//! `WriteExclusive` (AXI exclusive pair) / `ReadLinked`/`WriteConditional`
//! (OCP lazy synchronisation) — plus a broadcast write.

use std::fmt;

/// A VC-neutral transaction opcode.
///
/// # Examples
///
/// ```
/// use noc_transaction::Opcode;
/// assert!(Opcode::Read.is_read());
/// assert!(Opcode::WritePosted.is_posted());
/// assert!(!Opcode::WritePosted.expects_response());
/// assert!(Opcode::ReadLocked.is_locking());
/// assert!(Opcode::WriteExclusive.is_exclusive());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Plain read.
    Read,
    /// Plain write with response (non-posted).
    Write,
    /// Posted write: no response returns to the initiator (OCP `WR`,
    /// AHB-style fire-and-forget bridges). The NoC still acknowledges
    /// internally for flow control, but the socket sees nothing.
    WritePosted,
    /// Non-blocking exclusive read (AXI exclusive read). Arms the target
    /// NIU's exclusive monitor.
    ReadExclusive,
    /// Non-blocking exclusive write (AXI exclusive write). Succeeds with
    /// [`RespStatus::ExOkay`] only if the monitor reservation survived.
    WriteExclusive,
    /// Load-linked style read (OCP `RDL`, lazy synchronisation). Semantics
    /// identical to [`Opcode::ReadExclusive`] at the transaction layer —
    /// one shared "exclusive" service bit covers both (paper §3).
    ReadLinked,
    /// Store-conditional style write (OCP `WRC`). Fails cleanly (no write)
    /// when the reservation is gone.
    WriteConditional,
    /// Legacy blocking locked read (VCI `READEX`, AHB `HMASTLOCK` entry).
    /// Impacts the *transport* layer: switches pin the path until the
    /// matching [`Opcode::WriteUnlock`] passes (paper §3).
    ReadLocked,
    /// Legacy unlocking write, releasing a [`Opcode::ReadLocked`] sequence.
    WriteUnlock,
    /// Broadcast posted write to all targets (OCP `BCST`).
    Broadcast,
}

impl Opcode {
    /// All opcodes, for exhaustive tests and sweeps.
    pub const ALL: [Opcode; 10] = [
        Opcode::Read,
        Opcode::Write,
        Opcode::WritePosted,
        Opcode::ReadExclusive,
        Opcode::WriteExclusive,
        Opcode::ReadLinked,
        Opcode::WriteConditional,
        Opcode::ReadLocked,
        Opcode::WriteUnlock,
        Opcode::Broadcast,
    ];

    /// Returns `true` for opcodes that move data from target to initiator.
    pub const fn is_read(self) -> bool {
        matches!(
            self,
            Opcode::Read | Opcode::ReadExclusive | Opcode::ReadLinked | Opcode::ReadLocked
        )
    }

    /// Returns `true` for opcodes that move data from initiator to target.
    pub const fn is_write(self) -> bool {
        !self.is_read()
    }

    /// Returns `true` if no response returns to the socket.
    pub const fn is_posted(self) -> bool {
        matches!(self, Opcode::WritePosted | Opcode::Broadcast)
    }

    /// Returns `true` if the initiator expects a response transaction.
    pub const fn expects_response(self) -> bool {
        !self.is_posted()
    }

    /// Returns `true` for the legacy blocking lock pair, which the
    /// transport layer must react to (path pinning).
    pub const fn is_locking(self) -> bool {
        matches!(self, Opcode::ReadLocked | Opcode::WriteUnlock)
    }

    /// Returns `true` for the non-blocking exclusive family, implemented
    /// purely with a packet service bit plus NIU state.
    pub const fn is_exclusive(self) -> bool {
        matches!(
            self,
            Opcode::ReadExclusive
                | Opcode::WriteExclusive
                | Opcode::ReadLinked
                | Opcode::WriteConditional
        )
    }

    /// Compact 4-bit encoding used in packet headers.
    pub const fn encode(self) -> u8 {
        match self {
            Opcode::Read => 0x0,
            Opcode::Write => 0x1,
            Opcode::WritePosted => 0x2,
            Opcode::ReadExclusive => 0x3,
            Opcode::WriteExclusive => 0x4,
            Opcode::ReadLinked => 0x5,
            Opcode::WriteConditional => 0x6,
            Opcode::ReadLocked => 0x7,
            Opcode::WriteUnlock => 0x8,
            Opcode::Broadcast => 0x9,
        }
    }

    /// Decodes a 4-bit header encoding.
    ///
    /// Returns `None` for unassigned encodings.
    pub const fn decode(raw: u8) -> Option<Opcode> {
        Some(match raw {
            0x0 => Opcode::Read,
            0x1 => Opcode::Write,
            0x2 => Opcode::WritePosted,
            0x3 => Opcode::ReadExclusive,
            0x4 => Opcode::WriteExclusive,
            0x5 => Opcode::ReadLinked,
            0x6 => Opcode::WriteConditional,
            0x7 => Opcode::ReadLocked,
            0x8 => Opcode::WriteUnlock,
            0x9 => Opcode::Broadcast,
            _ => return None,
        })
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Opcode::Read => "RD",
            Opcode::Write => "WR",
            Opcode::WritePosted => "WRP",
            Opcode::ReadExclusive => "RDX",
            Opcode::WriteExclusive => "WRX",
            Opcode::ReadLinked => "RDL",
            Opcode::WriteConditional => "WRC",
            Opcode::ReadLocked => "RDLK",
            Opcode::WriteUnlock => "WRUN",
            Opcode::Broadcast => "BCST",
        };
        f.write_str(s)
    }
}

/// Response status, the union of socket response vocabularies.
///
/// Each NIU maps these onto its socket's response wires: AHB only has
/// OKAY/ERROR, AXI has OKAY/EXOKAY/SLVERR/DECERR, OCP has DVA/FAIL/ERR,
/// VCI has an error bit. The mapping tables live in the per-protocol NIUs.
///
/// # Examples
///
/// ```
/// use noc_transaction::RespStatus;
/// assert!(RespStatus::Okay.is_ok());
/// assert!(RespStatus::ExOkay.is_ok());
/// assert!(RespStatus::SlvErr.is_err());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum RespStatus {
    /// Normal success.
    #[default]
    Okay,
    /// Exclusive success (reservation held). Maps to AXI `EXOKAY`,
    /// OCP `DVA` on a successful `WRC`.
    ExOkay,
    /// Exclusive/conditional failure *without* side effects (reservation
    /// lost; the write did not happen). Maps to OCP `FAIL`; AXI signals the
    /// same situation as plain `OKAY` on an exclusive write.
    ExFail,
    /// Target signalled an error (AXI `SLVERR`, OCP `ERR`, VCI error).
    SlvErr,
    /// No target decodes the address (AXI `DECERR`); generated by the
    /// initiator NIU's address decoder.
    DecErr,
}

impl RespStatus {
    /// Returns `true` for success statuses (including exclusive success).
    pub const fn is_ok(self) -> bool {
        matches!(self, RespStatus::Okay | RespStatus::ExOkay)
    }

    /// Returns `true` for error statuses. `ExFail` counts as an error for
    /// accounting purposes even though it is a defined, side-effect-free
    /// outcome.
    pub const fn is_err(self) -> bool {
        !self.is_ok()
    }

    /// Compact 3-bit header encoding.
    pub const fn encode(self) -> u8 {
        match self {
            RespStatus::Okay => 0,
            RespStatus::ExOkay => 1,
            RespStatus::ExFail => 2,
            RespStatus::SlvErr => 3,
            RespStatus::DecErr => 4,
        }
    }

    /// Decodes a 3-bit header encoding.
    pub const fn decode(raw: u8) -> Option<RespStatus> {
        Some(match raw {
            0 => RespStatus::Okay,
            1 => RespStatus::ExOkay,
            2 => RespStatus::ExFail,
            3 => RespStatus::SlvErr,
            4 => RespStatus::DecErr,
            _ => return None,
        })
    }
}

impl fmt::Display for RespStatus {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            RespStatus::Okay => "OKAY",
            RespStatus::ExOkay => "EXOKAY",
            RespStatus::ExFail => "EXFAIL",
            RespStatus::SlvErr => "SLVERR",
            RespStatus::DecErr => "DECERR",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn read_write_partition_is_total() {
        for op in Opcode::ALL {
            assert_ne!(op.is_read(), op.is_write(), "{op} must be read xor write");
        }
    }

    #[test]
    fn posted_never_expects_response() {
        for op in Opcode::ALL {
            assert_ne!(op.is_posted(), op.expects_response());
        }
        assert!(Opcode::WritePosted.is_posted());
        assert!(Opcode::Broadcast.is_posted());
        assert!(Opcode::Write.expects_response());
    }

    #[test]
    fn locking_and_exclusive_are_disjoint() {
        for op in Opcode::ALL {
            assert!(
                !(op.is_locking() && op.is_exclusive()),
                "{op} cannot be both legacy-locking and exclusive"
            );
        }
    }

    #[test]
    fn opcode_encoding_round_trips() {
        for op in Opcode::ALL {
            assert_eq!(Opcode::decode(op.encode()), Some(op));
        }
        assert_eq!(Opcode::decode(0xF), None);
    }

    #[test]
    fn exclusive_family_membership() {
        assert!(Opcode::ReadExclusive.is_exclusive());
        assert!(Opcode::WriteExclusive.is_exclusive());
        assert!(Opcode::ReadLinked.is_exclusive());
        assert!(Opcode::WriteConditional.is_exclusive());
        assert!(!Opcode::Read.is_exclusive());
        assert!(!Opcode::ReadLocked.is_exclusive());
    }

    #[test]
    fn resp_status_classification() {
        assert!(RespStatus::Okay.is_ok());
        assert!(RespStatus::ExOkay.is_ok());
        assert!(RespStatus::ExFail.is_err());
        assert!(RespStatus::SlvErr.is_err());
        assert!(RespStatus::DecErr.is_err());
    }

    #[test]
    fn resp_status_encoding_round_trips() {
        for s in [
            RespStatus::Okay,
            RespStatus::ExOkay,
            RespStatus::ExFail,
            RespStatus::SlvErr,
            RespStatus::DecErr,
        ] {
            assert_eq!(RespStatus::decode(s.encode()), Some(s));
        }
        assert_eq!(RespStatus::decode(7), None);
    }

    #[test]
    fn displays_are_short_mnemonics() {
        assert_eq!(Opcode::Read.to_string(), "RD");
        assert_eq!(Opcode::WriteConditional.to_string(), "WRC");
        assert_eq!(RespStatus::DecErr.to_string(), "DECERR");
    }

    #[test]
    fn default_status_is_okay() {
        assert_eq!(RespStatus::default(), RespStatus::Okay);
    }
}
