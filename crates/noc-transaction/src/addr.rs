//! System addresses and the initiator-side address decoder.
//!
//! The initiator NIU turns a socket address into a packet destination
//! ([`crate::SlvAddr`]) by looking it up in an [`AddressMap`]. Addresses
//! that no target claims produce [`DecodeError::Unmapped`], which NIUs
//! convert into a [`crate::RespStatus::DecErr`] response without ever
//! touching the fabric.

use crate::node::SlvAddr;
use std::fmt;

/// A byte address in the system address space.
///
/// # Examples
///
/// ```
/// use noc_transaction::Addr;
/// let a = Addr::new(0x1000);
/// assert_eq!(a.raw(), 0x1000);
/// assert_eq!(a.align_down(0x100).raw(), 0x1000);
/// assert_eq!(Addr::new(0x1234).align_down(0x100).raw(), 0x1200);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Addr(u64);

impl Addr {
    /// Creates an address.
    pub const fn new(raw: u64) -> Self {
        Addr(raw)
    }

    /// The raw address value.
    pub const fn raw(self) -> u64 {
        self.0
    }

    /// Aligns down to a power-of-two `granule`.
    ///
    /// # Panics
    ///
    /// Panics if `granule` is not a power of two.
    pub fn align_down(self, granule: u64) -> Addr {
        assert!(granule.is_power_of_two(), "granule must be a power of two");
        Addr(self.0 & !(granule - 1))
    }

    /// Adds a byte offset.
    #[must_use]
    pub const fn offset(self, bytes: u64) -> Addr {
        Addr(self.0 + bytes)
    }
}

impl fmt::Display for Addr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:#x}", self.0)
    }
}

impl From<u64> for Addr {
    fn from(raw: u64) -> Self {
        Addr(raw)
    }
}

impl From<Addr> for u64 {
    fn from(a: Addr) -> u64 {
        a.0
    }
}

/// A half-open address range `[start, end)`.
///
/// # Examples
///
/// ```
/// use noc_transaction::AddressRange;
/// let r = AddressRange::new(0x1000, 0x2000)?;
/// assert!(r.contains(0x1000));
/// assert!(!r.contains(0x2000));
/// assert_eq!(r.len(), 0x1000);
/// # Ok::<(), noc_transaction::DecodeError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct AddressRange {
    start: u64,
    end: u64,
}

impl AddressRange {
    /// Creates the range `[start, end)`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::EmptyRange`] if `start >= end`.
    pub fn new(start: u64, end: u64) -> Result<Self, DecodeError> {
        if start >= end {
            return Err(DecodeError::EmptyRange { start, end });
        }
        Ok(AddressRange { start, end })
    }

    /// Range start (inclusive).
    pub const fn start(self) -> u64 {
        self.start
    }

    /// Range end (exclusive).
    pub const fn end(self) -> u64 {
        self.end
    }

    /// Number of bytes covered.
    pub const fn len(self) -> u64 {
        self.end - self.start
    }

    /// Always `false`: empty ranges cannot be constructed.
    pub const fn is_empty(self) -> bool {
        false
    }

    /// Returns `true` if `addr` falls inside the range.
    pub const fn contains(self, addr: u64) -> bool {
        addr >= self.start && addr < self.end
    }

    /// Returns `true` if the two ranges share any address.
    pub const fn overlaps(self, other: AddressRange) -> bool {
        self.start < other.end && other.start < self.end
    }
}

impl fmt::Display for AddressRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}, {:#x})", self.start, self.end)
    }
}

/// Errors from address map construction or decoding.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DecodeError {
    /// `start >= end` when constructing a range.
    EmptyRange {
        /// Requested start.
        start: u64,
        /// Requested end.
        end: u64,
    },
    /// A new entry overlaps an existing one.
    Overlap {
        /// The conflicting existing range.
        existing: AddressRange,
        /// The range being added.
        added: AddressRange,
    },
    /// No entry covers the address (becomes `DECERR` at the socket).
    Unmapped {
        /// The address that failed to decode.
        addr: u64,
    },
    /// A burst crosses out of the decoded target's range.
    CrossesBoundary {
        /// First address of the burst.
        addr: u64,
        /// Last address of the burst.
        last: u64,
    },
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DecodeError::EmptyRange { start, end } => {
                write!(f, "empty address range [{start:#x}, {end:#x})")
            }
            DecodeError::Overlap { existing, added } => {
                write!(f, "address range {added} overlaps existing {existing}")
            }
            DecodeError::Unmapped { addr } => write!(f, "address {addr:#x} is unmapped"),
            DecodeError::CrossesBoundary { addr, last } => {
                write!(f, "burst {addr:#x}..={last:#x} crosses a target boundary")
            }
        }
    }
}

impl std::error::Error for DecodeError {}

/// The system address map: an ordered set of non-overlapping ranges, each
/// owned by one target ([`SlvAddr`]).
///
/// # Examples
///
/// ```
/// use noc_transaction::{AddressMap, SlvAddr};
/// let mut map = AddressMap::new();
/// map.add(0x0000_0000, 0x1000_0000, SlvAddr::new(0))?; // DRAM
/// map.add(0x2000_0000, 0x2000_1000, SlvAddr::new(1))?; // UART
/// assert_eq!(map.decode(0x0800_0000)?, SlvAddr::new(0));
/// assert!(map.decode(0x3000_0000).is_err());
/// # Ok::<(), noc_transaction::DecodeError>(())
/// ```
#[derive(Debug, Clone, Default)]
pub struct AddressMap {
    entries: Vec<(AddressRange, SlvAddr)>,
}

impl AddressMap {
    /// Creates an empty map.
    pub fn new() -> Self {
        AddressMap::default()
    }

    /// Adds the range `[start, end)` for `target`.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::EmptyRange`] or [`DecodeError::Overlap`].
    pub fn add(&mut self, start: u64, end: u64, target: SlvAddr) -> Result<(), DecodeError> {
        let range = AddressRange::new(start, end)?;
        for (existing, _) in &self.entries {
            if existing.overlaps(range) {
                return Err(DecodeError::Overlap {
                    existing: *existing,
                    added: range,
                });
            }
        }
        self.entries.push((range, target));
        self.entries.sort_by_key(|(r, _)| r.start());
        Ok(())
    }

    /// Decodes a single address to its target.
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Unmapped`] if no range covers `addr`.
    pub fn decode(&self, addr: u64) -> Result<SlvAddr, DecodeError> {
        // Binary search over sorted, non-overlapping ranges.
        let idx = self.entries.partition_point(|(r, _)| r.start() <= addr);
        if idx > 0 {
            let (range, target) = self.entries[idx - 1];
            if range.contains(addr) {
                return Ok(target);
            }
        }
        Err(DecodeError::Unmapped { addr })
    }

    /// Decodes a whole burst footprint `[addr, last]`, requiring both ends
    /// in the same target (NIUs chop bursts so this holds; bridges that
    /// fail to are caught here).
    ///
    /// # Errors
    ///
    /// Returns [`DecodeError::Unmapped`] or [`DecodeError::CrossesBoundary`].
    pub fn decode_span(&self, addr: u64, last: u64) -> Result<SlvAddr, DecodeError> {
        let first = self.decode(addr)?;
        let end = self.decode(last)?;
        if first != end {
            return Err(DecodeError::CrossesBoundary { addr, last });
        }
        Ok(first)
    }

    /// Iterates over `(range, target)` entries in address order.
    pub fn iter(&self) -> impl Iterator<Item = (AddressRange, SlvAddr)> + '_ {
        self.entries.iter().copied()
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Returns `true` if the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// The distinct targets appearing in the map, in first-range order.
    pub fn targets(&self) -> Vec<SlvAddr> {
        let mut out: Vec<SlvAddr> = Vec::new();
        for (_, t) in &self.entries {
            if !out.contains(t) {
                out.push(*t);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn map3() -> AddressMap {
        let mut m = AddressMap::new();
        m.add(0x0, 0x1000, SlvAddr::new(0)).unwrap();
        m.add(0x1000, 0x2000, SlvAddr::new(1)).unwrap();
        m.add(0x8000, 0x9000, SlvAddr::new(2)).unwrap();
        m
    }

    #[test]
    fn decode_hits_correct_target() {
        let m = map3();
        assert_eq!(m.decode(0x0).unwrap(), SlvAddr::new(0));
        assert_eq!(m.decode(0xFFF).unwrap(), SlvAddr::new(0));
        assert_eq!(m.decode(0x1000).unwrap(), SlvAddr::new(1));
        assert_eq!(m.decode(0x8FFF).unwrap(), SlvAddr::new(2));
    }

    #[test]
    fn decode_unmapped_hole() {
        let m = map3();
        assert_eq!(
            m.decode(0x5000),
            Err(DecodeError::Unmapped { addr: 0x5000 })
        );
        assert_eq!(
            m.decode(0x9000),
            Err(DecodeError::Unmapped { addr: 0x9000 })
        );
    }

    #[test]
    fn overlap_rejected() {
        let mut m = map3();
        let err = m.add(0x800, 0x1800, SlvAddr::new(3)).unwrap_err();
        assert!(matches!(err, DecodeError::Overlap { .. }));
        // map unchanged
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn adjacent_ranges_allowed() {
        let mut m = AddressMap::new();
        m.add(0x0, 0x100, SlvAddr::new(0)).unwrap();
        m.add(0x100, 0x200, SlvAddr::new(1)).unwrap();
        assert_eq!(m.decode(0xFF).unwrap(), SlvAddr::new(0));
        assert_eq!(m.decode(0x100).unwrap(), SlvAddr::new(1));
    }

    #[test]
    fn empty_range_rejected() {
        let mut m = AddressMap::new();
        assert!(matches!(
            m.add(0x100, 0x100, SlvAddr::new(0)),
            Err(DecodeError::EmptyRange { .. })
        ));
        assert!(matches!(
            AddressRange::new(5, 3),
            Err(DecodeError::EmptyRange { .. })
        ));
    }

    #[test]
    fn decode_span_same_target() {
        let m = map3();
        assert_eq!(m.decode_span(0x1000, 0x1FFF).unwrap(), SlvAddr::new(1));
    }

    #[test]
    fn decode_span_crossing_fails() {
        let m = map3();
        assert_eq!(
            m.decode_span(0xF00, 0x10FF),
            Err(DecodeError::CrossesBoundary {
                addr: 0xF00,
                last: 0x10FF
            })
        );
    }

    #[test]
    fn targets_deduplicated() {
        let mut m = AddressMap::new();
        m.add(0x0, 0x100, SlvAddr::new(5)).unwrap();
        m.add(0x200, 0x300, SlvAddr::new(5)).unwrap();
        m.add(0x400, 0x500, SlvAddr::new(1)).unwrap();
        assert_eq!(m.targets(), vec![SlvAddr::new(5), SlvAddr::new(1)]);
    }

    #[test]
    fn range_accessors() {
        let r = AddressRange::new(0x10, 0x20).unwrap();
        assert_eq!(r.start(), 0x10);
        assert_eq!(r.end(), 0x20);
        assert_eq!(r.len(), 0x10);
        assert!(!r.is_empty());
        assert!(r.overlaps(AddressRange::new(0x1F, 0x30).unwrap()));
        assert!(!r.overlaps(AddressRange::new(0x20, 0x30).unwrap()));
    }

    #[test]
    fn addr_alignment() {
        assert_eq!(Addr::new(0x1234).align_down(16).raw(), 0x1230);
        assert_eq!(Addr::new(0x1234).offset(4).raw(), 0x1238);
    }

    #[test]
    fn displays() {
        assert_eq!(Addr::new(0xFF).to_string(), "0xff");
        assert_eq!(
            AddressRange::new(0, 0x100).unwrap().to_string(),
            "[0x0, 0x100)"
        );
        assert!(DecodeError::Unmapped { addr: 0x42 }
            .to_string()
            .contains("0x42"));
    }
}
