//! The NIU transaction state lookup table.
//!
//! Paper §2: *"Does the feature require some specific transaction state to
//! be stored in the NIU? If yes, add the state to the standard NIU state
//! lookup tables (which track for example that a Load request is waiting
//! for a response)."*
//!
//! [`TransactionTable`] is that standard table: a fixed-capacity pool of
//! entries tracking each outstanding request until its response returns.
//! Its capacity is the dominant NIU area knob (see `noc-area`), which is
//! how an NIU "scales its gate count to its expected performance".

use crate::node::SlvAddr;
use crate::opcode::Opcode;
use crate::ordering::StreamId;
use crate::tag::Tag;
use std::fmt;

/// A slot index into a [`TransactionTable`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EntryId(u16);

impl EntryId {
    /// Raw slot number.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for EntryId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "entry {}", self.0)
    }
}

/// One outstanding transaction tracked by the NIU.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TableEntry {
    /// NoC tag stamped into the request packet.
    pub tag: Tag,
    /// Socket-level stream (thread/ID) for response routing back to the IP.
    pub stream: StreamId,
    /// Destination target.
    pub dst: SlvAddr,
    /// Transaction opcode.
    pub opcode: Opcode,
    /// Number of response beats still expected.
    pub beats_remaining: u32,
    /// Issue timestamp (base cycles) for latency accounting.
    pub issued_at: u64,
    /// Sequence number preserving per-tag issue order (for ordered
    /// delivery checks and reorder buffers).
    pub seq: u64,
    /// Opaque socket-specific sideband preserved across the NoC (e.g. the
    /// original AXI ID bits not captured by the rename table).
    pub sideband: u32,
}

/// Errors from table operations.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TableError {
    /// All entries are in use (back-pressure; retry next cycle).
    Full,
    /// Lookup/free of a slot that is not allocated.
    NotAllocated {
        /// The offending slot.
        entry: EntryId,
    },
    /// A response arrived whose `(tag)` matches no outstanding entry —
    /// a fabric or protocol corruption.
    NoMatch {
        /// Tag of the orphan response.
        tag: Tag,
    },
}

impl fmt::Display for TableError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TableError::Full => write!(f, "transaction table full"),
            TableError::NotAllocated { entry } => write!(f, "{entry} not allocated"),
            TableError::NoMatch { tag } => write!(f, "no outstanding entry for {tag}"),
        }
    }
}

impl std::error::Error for TableError {}

/// Fixed-capacity table of outstanding transactions.
///
/// Responses are matched by tag in *issue order* (the fabric preserves
/// same-tag order end to end, so the oldest same-tag entry is always the
/// one a response belongs to).
///
/// # Examples
///
/// ```
/// use noc_transaction::{Opcode, SlvAddr, StreamId, Tag, TransactionTable};
/// use noc_transaction::table::TableEntry;
///
/// let mut t = TransactionTable::new(2);
/// let id = t.allocate(Tag::ZERO, StreamId::ZERO, SlvAddr::new(1), Opcode::Read, 4, 100, 0)?;
/// assert_eq!(t.occupancy(), 1);
/// let entry = t.match_response(Tag::ZERO)?;
/// assert_eq!(entry, id);
/// t.free(id)?;
/// assert_eq!(t.occupancy(), 0);
/// # Ok::<(), noc_transaction::TableError>(())
/// ```
#[derive(Debug, Clone)]
pub struct TransactionTable {
    slots: Vec<Option<TableEntry>>,
    next_seq: u64,
    peak: usize,
    allocations: u64,
}

impl TransactionTable {
    /// Creates a table with `capacity` slots.
    ///
    /// # Panics
    ///
    /// Panics if `capacity` is zero.
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "table capacity must be non-zero");
        TransactionTable {
            slots: vec![None; capacity],
            next_seq: 0,
            peak: 0,
            allocations: 0,
        }
    }

    /// Table capacity (the gate-count knob).
    pub fn capacity(&self) -> usize {
        self.slots.len()
    }

    /// Number of slots currently allocated.
    pub fn occupancy(&self) -> usize {
        self.slots.iter().filter(|s| s.is_some()).count()
    }

    /// Highest occupancy ever observed (for sizing studies).
    pub fn peak_occupancy(&self) -> usize {
        self.peak
    }

    /// Total allocations performed.
    pub fn total_allocations(&self) -> u64 {
        self.allocations
    }

    /// Returns `true` if no slot is free.
    pub fn is_full(&self) -> bool {
        self.slots.iter().all(|s| s.is_some())
    }

    /// Allocates a slot for a new outstanding transaction.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::Full`] when no slot is free.
    #[allow(clippy::too_many_arguments)]
    pub fn allocate(
        &mut self,
        tag: Tag,
        stream: StreamId,
        dst: SlvAddr,
        opcode: Opcode,
        beats: u32,
        issued_at: u64,
        sideband: u32,
    ) -> Result<EntryId, TableError> {
        let free = self
            .slots
            .iter()
            .position(|s| s.is_none())
            .ok_or(TableError::Full)?;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.slots[free] = Some(TableEntry {
            tag,
            stream,
            dst,
            opcode,
            beats_remaining: beats,
            issued_at,
            seq,
            sideband,
        });
        self.allocations += 1;
        let occ = self.occupancy();
        self.peak = self.peak.max(occ);
        Ok(EntryId(free as u16))
    }

    /// Finds the oldest outstanding entry with `tag` (the entry an
    /// incoming same-tag response belongs to).
    ///
    /// # Errors
    ///
    /// Returns [`TableError::NoMatch`] if nothing with that tag is
    /// outstanding.
    pub fn match_response(&self, tag: Tag) -> Result<EntryId, TableError> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|e| (i, e)))
            .filter(|(_, e)| e.tag == tag)
            .min_by_key(|(_, e)| e.seq)
            .map(|(i, _)| EntryId(i as u16))
            .ok_or(TableError::NoMatch { tag })
    }

    /// Shared access to an allocated entry.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::NotAllocated`] for free slots.
    pub fn get(&self, id: EntryId) -> Result<&TableEntry, TableError> {
        self.slots
            .get(id.index())
            .and_then(|s| s.as_ref())
            .ok_or(TableError::NotAllocated { entry: id })
    }

    /// Exclusive access to an allocated entry.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::NotAllocated`] for free slots.
    pub fn get_mut(&mut self, id: EntryId) -> Result<&mut TableEntry, TableError> {
        self.slots
            .get_mut(id.index())
            .and_then(|s| s.as_mut())
            .ok_or(TableError::NotAllocated { entry: id })
    }

    /// Frees a slot, returning its entry.
    ///
    /// # Errors
    ///
    /// Returns [`TableError::NotAllocated`] for already-free slots.
    pub fn free(&mut self, id: EntryId) -> Result<TableEntry, TableError> {
        self.slots
            .get_mut(id.index())
            .and_then(|s| s.take())
            .ok_or(TableError::NotAllocated { entry: id })
    }

    /// Iterates over allocated entries in slot order.
    pub fn iter(&self) -> impl Iterator<Item = (EntryId, &TableEntry)> {
        self.slots
            .iter()
            .enumerate()
            .filter_map(|(i, s)| s.as_ref().map(|e| (EntryId(i as u16), e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn alloc(t: &mut TransactionTable, tag: u8) -> EntryId {
        t.allocate(
            Tag::new(tag),
            StreamId::ZERO,
            SlvAddr::new(0),
            Opcode::Read,
            1,
            0,
            0,
        )
        .unwrap()
    }

    #[test]
    fn allocate_free_cycle() {
        let mut t = TransactionTable::new(2);
        let a = alloc(&mut t, 0);
        let b = alloc(&mut t, 1);
        assert!(t.is_full());
        assert_eq!(
            t.allocate(
                Tag::ZERO,
                StreamId::ZERO,
                SlvAddr::new(0),
                Opcode::Read,
                1,
                0,
                0
            ),
            Err(TableError::Full)
        );
        t.free(a).unwrap();
        assert!(!t.is_full());
        t.free(b).unwrap();
        assert_eq!(t.occupancy(), 0);
        assert_eq!(t.peak_occupancy(), 2);
        assert_eq!(t.total_allocations(), 2);
    }

    #[test]
    fn double_free_rejected() {
        let mut t = TransactionTable::new(1);
        let a = alloc(&mut t, 0);
        t.free(a).unwrap();
        assert_eq!(t.free(a), Err(TableError::NotAllocated { entry: a }));
    }

    #[test]
    fn match_response_picks_oldest_same_tag() {
        let mut t = TransactionTable::new(4);
        let first = alloc(&mut t, 5);
        let _other = alloc(&mut t, 6);
        let second = alloc(&mut t, 5);
        let hit = t.match_response(Tag::new(5)).unwrap();
        assert_eq!(hit, first);
        t.free(first).unwrap();
        let hit = t.match_response(Tag::new(5)).unwrap();
        assert_eq!(hit, second);
    }

    #[test]
    fn match_response_no_match() {
        let t = TransactionTable::new(2);
        assert_eq!(
            t.match_response(Tag::new(3)),
            Err(TableError::NoMatch { tag: Tag::new(3) })
        );
    }

    #[test]
    fn slot_reuse_keeps_seq_order() {
        let mut t = TransactionTable::new(2);
        let a = alloc(&mut t, 1); // seq 0
        let _b = alloc(&mut t, 1); // seq 1
        t.free(a).unwrap();
        let _c = alloc(&mut t, 1); // seq 2, reuses slot 0
                                   // oldest same-tag is seq 1 (slot 1), not the recycled slot 0
        let hit = t.match_response(Tag::new(1)).unwrap();
        assert_eq!(hit.index(), 1);
    }

    #[test]
    fn get_and_mutate_entry() {
        let mut t = TransactionTable::new(1);
        let id = t
            .allocate(
                Tag::new(2),
                StreamId::new(7),
                SlvAddr::new(3),
                Opcode::Write,
                4,
                123,
                0xDEAD,
            )
            .unwrap();
        {
            let e = t.get(id).unwrap();
            assert_eq!(e.stream, StreamId::new(7));
            assert_eq!(e.issued_at, 123);
            assert_eq!(e.sideband, 0xDEAD);
        }
        t.get_mut(id).unwrap().beats_remaining -= 1;
        assert_eq!(t.get(id).unwrap().beats_remaining, 3);
    }

    #[test]
    fn iter_lists_allocated_only() {
        let mut t = TransactionTable::new(3);
        let a = alloc(&mut t, 0);
        let b = alloc(&mut t, 1);
        t.free(a).unwrap();
        let listed: Vec<EntryId> = t.iter().map(|(id, _)| id).collect();
        assert_eq!(listed, vec![b]);
    }

    #[test]
    #[should_panic(expected = "capacity must be non-zero")]
    fn zero_capacity_panics() {
        TransactionTable::new(0);
    }

    #[test]
    fn error_display() {
        assert!(TableError::Full.to_string().contains("full"));
        assert!(TableError::NoMatch { tag: Tag::new(1) }
            .to_string()
            .contains("T1"));
    }
}
