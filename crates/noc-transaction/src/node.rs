//! NoC node addressing: `MstAddr` (packet source) and `SlvAddr` (packet
//! destination), the first two of the three fields the Arteris transaction
//! layer uses to encode every socket ordering model.

use std::fmt;

macro_rules! node_addr_type {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
        pub struct $name(u16);

        impl $name {
            /// Creates an address from a raw node number.
            pub const fn new(raw: u16) -> Self {
                $name(raw)
            }

            /// The raw node number.
            pub const fn raw(self) -> u16 {
                self.0
            }

            /// The index form, for table lookups.
            pub const fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl From<u16> for $name {
            fn from(raw: u16) -> Self {
                $name(raw)
            }
        }

        impl From<$name> for u16 {
            fn from(a: $name) -> u16 {
                a.0
            }
        }
    };
}

node_addr_type!(
    /// The packet *source* field: identifies the initiator NIU that issued a
    /// request (and therefore where the response must return). Called
    /// `MstAddr` in the paper.
    ///
    /// # Examples
    ///
    /// ```
    /// use noc_transaction::MstAddr;
    /// let m = MstAddr::new(3);
    /// assert_eq!(m.raw(), 3);
    /// assert_eq!(m.to_string(), "M3");
    /// ```
    MstAddr,
    "M"
);

node_addr_type!(
    /// The packet *destination* field: identifies the target NIU a request
    /// is routed to. Called `SlvAddr` in the paper.
    ///
    /// # Examples
    ///
    /// ```
    /// use noc_transaction::SlvAddr;
    /// let s = SlvAddr::new(5);
    /// assert_eq!(s.index(), 5);
    /// assert_eq!(s.to_string(), "S5");
    /// ```
    SlvAddr,
    "S"
);

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_accessors() {
        let m = MstAddr::new(42);
        assert_eq!(m.raw(), 42);
        assert_eq!(m.index(), 42);
        let s = SlvAddr::from(7u16);
        assert_eq!(u16::from(s), 7);
    }

    #[test]
    fn display_distinguishes_master_and_slave() {
        assert_eq!(MstAddr::new(1).to_string(), "M1");
        assert_eq!(SlvAddr::new(1).to_string(), "S1");
    }

    #[test]
    fn ordering_and_equality() {
        assert!(MstAddr::new(1) < MstAddr::new(2));
        assert_eq!(SlvAddr::new(3), SlvAddr::new(3));
        assert_ne!(SlvAddr::new(3), SlvAddr::new(4));
    }

    #[test]
    fn default_is_zero() {
        assert_eq!(MstAddr::default().raw(), 0);
        assert_eq!(SlvAddr::default().raw(), 0);
    }
}
