//! The `Tag` packet field — the third leg of the `(MstAddr, SlvAddr, Tag)`
//! triple. Tags distinguish independent streams of transactions from one
//! initiator, which is how the transaction layer absorbs OCP threads and
//! AXI transaction IDs without the switch fabric knowing anything about
//! either.

use std::fmt;

/// A transaction tag.
///
/// Responses carrying the same `(MstAddr, Tag)` pair must be delivered to
/// the socket in request order; responses with different tags may be
/// reordered freely. How socket-level identifiers (AXI IDs, OCP thread IDs)
/// map onto tags is the NIU's [assignment policy](crate::OrderingPolicy).
///
/// # Examples
///
/// ```
/// use noc_transaction::Tag;
/// let t = Tag::new(3);
/// assert_eq!(t.raw(), 3);
/// assert_eq!(t.to_string(), "T3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct Tag(u8);

impl Tag {
    /// Tag zero — the only tag a fully-ordered NIU ever uses.
    pub const ZERO: Tag = Tag(0);

    /// Creates a tag from its raw value.
    pub const fn new(raw: u8) -> Self {
        Tag(raw)
    }

    /// The raw tag value.
    pub const fn raw(self) -> u8 {
        self.0
    }

    /// The index form, for table lookups.
    pub const fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Tag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "T{}", self.0)
    }
}

impl From<u8> for Tag {
    fn from(raw: u8) -> Self {
        Tag(raw)
    }
}

impl From<Tag> for u8 {
    fn from(t: Tag) -> u8 {
        t.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips() {
        let t = Tag::from(9u8);
        assert_eq!(u8::from(t), 9);
        assert_eq!(t.index(), 9);
    }

    #[test]
    fn zero_constant() {
        assert_eq!(Tag::ZERO, Tag::new(0));
        assert_eq!(Tag::default(), Tag::ZERO);
    }

    #[test]
    fn display() {
        assert_eq!(Tag::new(250).to_string(), "T250");
    }
}
