//! The neutral transaction primitives exchanged between NIUs, plus the
//! functional fingerprint used to prove transport/physical independence.

use crate::burst::{Burst, BurstError};
use crate::node::{MstAddr, SlvAddr};
use crate::opcode::{Opcode, RespStatus};
use crate::ordering::StreamId;
use crate::services::ServiceBits;
use crate::tag::Tag;
use std::fmt;

/// Errors from transaction construction.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TransactionError {
    /// Invalid burst parameters.
    Burst(BurstError),
    /// A write carried the wrong amount of data.
    DataLengthMismatch {
        /// Bytes the burst requires.
        expected: u64,
        /// Bytes supplied.
        got: usize,
    },
    /// A read carried write data.
    UnexpectedData,
}

impl fmt::Display for TransactionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TransactionError::Burst(e) => write!(f, "invalid burst: {e}"),
            TransactionError::DataLengthMismatch { expected, got } => {
                write!(
                    f,
                    "write data length {got} does not match burst ({expected} bytes)"
                )
            }
            TransactionError::UnexpectedData => write!(f, "read transaction carries write data"),
        }
    }
}

impl std::error::Error for TransactionError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TransactionError::Burst(e) => Some(e),
            _ => None,
        }
    }
}

impl From<BurstError> for TransactionError {
    fn from(e: BurstError) -> Self {
        TransactionError::Burst(e)
    }
}

/// A VC-neutral request: what an initiator NIU emits after translating its
/// socket's request channel, and what a target NIU presents to its IP.
///
/// Construct through [`TransactionRequest::builder`].
///
/// # Examples
///
/// ```
/// use noc_transaction::{Burst, Opcode, TransactionRequest};
/// let req = TransactionRequest::builder(Opcode::Write)
///     .address(0x80)
///     .burst(Burst::incr(2, 4)?)
///     .data(vec![0u8; 8])
///     .build()?;
/// assert_eq!(req.total_bytes(), 8);
/// assert!(req.opcode().is_write());
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransactionRequest {
    opcode: Opcode,
    address: u64,
    burst: Burst,
    src: MstAddr,
    dst: SlvAddr,
    tag: Tag,
    stream: StreamId,
    services: ServiceBits,
    pressure: u8,
    data: Vec<u8>,
}

impl TransactionRequest {
    /// Starts building a request with the given opcode.
    pub fn builder(opcode: Opcode) -> RequestBuilder {
        RequestBuilder::new(opcode)
    }

    /// The opcode.
    pub fn opcode(&self) -> Opcode {
        self.opcode
    }

    /// The first byte address.
    pub fn address(&self) -> u64 {
        self.address
    }

    /// The burst description.
    pub fn burst(&self) -> Burst {
        self.burst
    }

    /// Packet source (initiator NIU).
    pub fn src(&self) -> MstAddr {
        self.src
    }

    /// Packet destination (target NIU).
    pub fn dst(&self) -> SlvAddr {
        self.dst
    }

    /// NoC ordering tag.
    pub fn tag(&self) -> Tag {
        self.tag
    }

    /// Socket stream the request came from (thread/ID).
    pub fn stream(&self) -> StreamId {
        self.stream
    }

    /// Optional service bits riding on the packet.
    pub fn services(&self) -> ServiceBits {
        self.services
    }

    /// QoS pressure (0 = lowest priority).
    pub fn pressure(&self) -> u8 {
        self.pressure
    }

    /// Write payload (empty for reads).
    pub fn data(&self) -> &[u8] {
        &self.data
    }

    /// Total payload bytes of the burst.
    pub fn total_bytes(&self) -> u64 {
        self.burst.total_bytes()
    }

    /// Address of the last byte touched by the burst (for span decoding).
    pub fn last_address(&self) -> u64 {
        self.burst
            .beat_addresses(self.address)
            .last()
            .map(|a| a + self.burst.beat_bytes() as u64 - 1)
            .unwrap_or(self.address)
    }

    /// Re-stamps the NoC routing fields (used by NIUs after decode and tag
    /// assignment).
    #[must_use]
    pub fn with_route(mut self, src: MstAddr, dst: SlvAddr, tag: Tag) -> Self {
        self.src = src;
        self.dst = dst;
        self.tag = tag;
        self
    }

    /// Adds service bits (used by NIUs, e.g. stamping the exclusive bit).
    #[must_use]
    pub fn with_services(mut self, services: ServiceBits) -> Self {
        self.services = self.services.union(services);
        self
    }
}

/// Builder for [`TransactionRequest`]. Created by
/// [`TransactionRequest::builder`].
#[derive(Debug, Clone)]
pub struct RequestBuilder {
    opcode: Opcode,
    address: u64,
    burst: Result<Burst, BurstError>,
    src: MstAddr,
    dst: SlvAddr,
    tag: Tag,
    stream: StreamId,
    services: ServiceBits,
    pressure: u8,
    data: Vec<u8>,
}

impl RequestBuilder {
    fn new(opcode: Opcode) -> Self {
        RequestBuilder {
            opcode,
            address: 0,
            burst: Burst::single(4),
            src: MstAddr::default(),
            dst: SlvAddr::default(),
            tag: Tag::ZERO,
            stream: StreamId::ZERO,
            services: ServiceBits::NONE,
            pressure: 0,
            data: Vec::new(),
        }
    }

    /// Sets the byte address.
    #[must_use]
    pub fn address(mut self, address: u64) -> Self {
        self.address = address;
        self
    }

    /// Sets the burst.
    #[must_use]
    pub fn burst(mut self, burst: Burst) -> Self {
        self.burst = Ok(burst);
        self
    }

    /// Sets the packet source.
    #[must_use]
    pub fn source(mut self, src: MstAddr) -> Self {
        self.src = src;
        self
    }

    /// Sets the packet destination.
    #[must_use]
    pub fn destination(mut self, dst: SlvAddr) -> Self {
        self.dst = dst;
        self
    }

    /// Sets the NoC tag.
    #[must_use]
    pub fn tag(mut self, tag: Tag) -> Self {
        self.tag = tag;
        self
    }

    /// Sets the socket stream.
    #[must_use]
    pub fn stream(mut self, stream: StreamId) -> Self {
        self.stream = stream;
        self
    }

    /// Sets service bits.
    #[must_use]
    pub fn services(mut self, services: ServiceBits) -> Self {
        self.services = services;
        self
    }

    /// Sets QoS pressure.
    #[must_use]
    pub fn pressure(mut self, pressure: u8) -> Self {
        self.pressure = pressure;
        self
    }

    /// Sets write data.
    #[must_use]
    pub fn data(mut self, data: Vec<u8>) -> Self {
        self.data = data;
        self
    }

    /// Validates and builds the request.
    ///
    /// # Errors
    ///
    /// - [`TransactionError::Burst`] if the burst was invalid;
    /// - [`TransactionError::DataLengthMismatch`] if write data does not
    ///   match the burst size (writes with no data are auto-filled with
    ///   zeros, a convenience for address-only tests);
    /// - [`TransactionError::UnexpectedData`] if a read carries data.
    pub fn build(self) -> Result<TransactionRequest, TransactionError> {
        let burst = self.burst?;
        let mut data = self.data;
        if self.opcode.is_write() {
            let expected = burst.total_bytes();
            if data.is_empty() {
                data = vec![0; expected as usize];
            } else if data.len() as u64 != expected {
                return Err(TransactionError::DataLengthMismatch {
                    expected,
                    got: data.len(),
                });
            }
        } else if !data.is_empty() {
            return Err(TransactionError::UnexpectedData);
        }
        Ok(TransactionRequest {
            opcode: self.opcode,
            address: self.address,
            burst,
            src: self.src,
            dst: self.dst,
            tag: self.tag,
            stream: self.stream,
            services: self.services,
            pressure: self.pressure,
            data,
        })
    }
}

impl fmt::Display for TransactionRequest {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} @{:#x} {} {}→{} {}",
            self.opcode, self.address, self.burst, self.src, self.dst, self.tag
        )
    }
}

/// A VC-neutral response travelling back from a target NIU to the
/// initiator NIU that issued the matching request.
///
/// # Examples
///
/// ```
/// use noc_transaction::{MstAddr, RespStatus, SlvAddr, Tag, TransactionResponse};
/// let resp = TransactionResponse::new(
///     RespStatus::Okay, MstAddr::new(1), SlvAddr::new(2), Tag::ZERO, vec![1, 2, 3, 4]);
/// assert!(resp.status().is_ok());
/// assert_eq!(resp.data().len(), 4);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TransactionResponse {
    status: RespStatus,
    dst: MstAddr,
    origin: SlvAddr,
    tag: Tag,
    data: Vec<u8>,
}

impl TransactionResponse {
    /// Creates a response routed back to initiator `dst` from target
    /// `origin`, carrying read `data` (empty for writes).
    pub fn new(status: RespStatus, dst: MstAddr, origin: SlvAddr, tag: Tag, data: Vec<u8>) -> Self {
        TransactionResponse {
            status,
            dst,
            origin,
            tag,
            data,
        }
    }

    /// Response status.
    pub fn status(&self) -> RespStatus {
        self.status
    }

    /// The initiator NIU this response returns to.
    pub fn dst(&self) -> MstAddr {
        self.dst
    }

    /// The target NIU that produced it.
    pub fn origin(&self) -> SlvAddr {
        self.origin
    }

    /// The tag echoed from the request.
    pub fn tag(&self) -> Tag {
        self.tag
    }

    /// Read payload.
    pub fn data(&self) -> &[u8] {
        &self.data
    }
}

impl fmt::Display for TransactionResponse {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{} {}←{} {} ({} bytes)",
            self.status,
            self.dst,
            self.origin,
            self.tag,
            self.data.len()
        )
    }
}

/// An order-insensitive digest of completed transactions.
///
/// Two simulations of the same workload over *different* transport or
/// physical configurations must produce equal fingerprints — that is the
/// paper's layer-independence claim made executable. The combiner is
/// commutative (sum + xor of per-record hashes), so legal response
/// reorderings across tags do not change the digest, while any change in
/// *what* completed (opcode, address, data, status) does.
///
/// # Examples
///
/// ```
/// use noc_transaction::Fingerprint;
/// let mut a = Fingerprint::new();
/// let mut b = Fingerprint::new();
/// a.record(0, 0x100, &[1, 2], 0);
/// a.record(1, 0x200, &[3], 0);
/// // same records, other order:
/// b.record(1, 0x200, &[3], 0);
/// b.record(0, 0x100, &[1, 2], 0);
/// assert_eq!(a, b);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub struct Fingerprint {
    sum: u64,
    xor: u64,
    count: u64,
}

impl Fingerprint {
    /// Creates an empty fingerprint.
    pub fn new() -> Self {
        Fingerprint::default()
    }

    /// Records one completed transaction: an opcode discriminant, its
    /// address, its (read or write) data and its status code.
    pub fn record(&mut self, opcode: u8, address: u64, data: &[u8], status: u8) {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325; // FNV-1a offset basis
        let mut eat = |byte: u8| {
            h ^= byte as u64;
            h = h.wrapping_mul(0x1000_0000_01b3);
        };
        eat(opcode);
        for b in address.to_le_bytes() {
            eat(b);
        }
        eat(status);
        for &b in data {
            eat(b);
        }
        self.sum = self.sum.wrapping_add(h);
        self.xor ^= h.rotate_left((h % 63) as u32);
        self.count += 1;
    }

    /// Records a completed request/response pair.
    pub fn record_pair(&mut self, req: &TransactionRequest, resp: &TransactionResponse) {
        let data = if req.opcode().is_read() {
            resp.data()
        } else {
            req.data()
        };
        self.record(
            req.opcode().encode(),
            req.address(),
            data,
            resp.status().encode(),
        );
    }

    /// Number of records folded in.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The digest value.
    pub fn digest(&self) -> u64 {
        self.sum ^ self.xor.rotate_left(32) ^ self.count
    }

    /// Merges another fingerprint (e.g. per-master digests into a system
    /// digest).
    pub fn merge(&mut self, other: &Fingerprint) {
        self.sum = self.sum.wrapping_add(other.sum);
        self.xor ^= other.xor;
        self.count += other.count;
    }
}

impl fmt::Display for Fingerprint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "fp:{:016x}/{}", self.digest(), self.count)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_defaults_and_accessors() {
        let req = TransactionRequest::builder(Opcode::Read)
            .address(0x1000)
            .build()
            .unwrap();
        assert_eq!(req.opcode(), Opcode::Read);
        assert_eq!(req.address(), 0x1000);
        assert_eq!(req.burst().beats(), 1);
        assert_eq!(req.tag(), Tag::ZERO);
        assert_eq!(req.pressure(), 0);
        assert!(req.data().is_empty());
    }

    #[test]
    fn write_data_validation() {
        let err = TransactionRequest::builder(Opcode::Write)
            .burst(Burst::incr(2, 4).unwrap())
            .data(vec![0; 7])
            .build()
            .unwrap_err();
        assert_eq!(
            err,
            TransactionError::DataLengthMismatch {
                expected: 8,
                got: 7
            }
        );
    }

    #[test]
    fn write_without_data_zero_fills() {
        let req = TransactionRequest::builder(Opcode::Write)
            .burst(Burst::incr(2, 4).unwrap())
            .build()
            .unwrap();
        assert_eq!(req.data(), &[0u8; 8]);
    }

    #[test]
    fn read_with_data_rejected() {
        let err = TransactionRequest::builder(Opcode::Read)
            .data(vec![1])
            .build()
            .unwrap_err();
        assert_eq!(err, TransactionError::UnexpectedData);
    }

    #[test]
    fn invalid_burst_propagates() {
        let b = Burst::incr(4, 3);
        assert!(b.is_err());
        // builder keeps the error until build()
        let err = match b {
            Err(e) => e,
            Ok(_) => unreachable!(),
        };
        assert_eq!(
            TransactionError::from(err),
            TransactionError::Burst(BurstError::InvalidBeatSize(3))
        );
    }

    #[test]
    fn last_address_of_incr_burst() {
        let req = TransactionRequest::builder(Opcode::Read)
            .address(0x100)
            .burst(Burst::incr(4, 4).unwrap())
            .build()
            .unwrap();
        assert_eq!(req.last_address(), 0x10F);
    }

    #[test]
    fn with_route_and_services() {
        let req = TransactionRequest::builder(Opcode::ReadExclusive)
            .address(0x40)
            .build()
            .unwrap()
            .with_route(MstAddr::new(3), SlvAddr::new(4), Tag::new(2))
            .with_services(ServiceBits::EXCLUSIVE);
        assert_eq!(req.src(), MstAddr::new(3));
        assert_eq!(req.dst(), SlvAddr::new(4));
        assert_eq!(req.tag(), Tag::new(2));
        assert!(req.services().contains(ServiceBits::EXCLUSIVE));
    }

    #[test]
    fn response_accessors() {
        let r = TransactionResponse::new(
            RespStatus::SlvErr,
            MstAddr::new(1),
            SlvAddr::new(9),
            Tag::new(3),
            vec![7],
        );
        assert_eq!(r.status(), RespStatus::SlvErr);
        assert_eq!(r.dst(), MstAddr::new(1));
        assert_eq!(r.origin(), SlvAddr::new(9));
        assert_eq!(r.tag(), Tag::new(3));
        assert_eq!(r.data(), &[7]);
        assert!(r.to_string().contains("SLVERR"));
    }

    #[test]
    fn fingerprint_order_insensitive() {
        let mut a = Fingerprint::new();
        let mut b = Fingerprint::new();
        for i in 0..50u64 {
            a.record(0, i, &[i as u8], 0);
        }
        for i in (0..50u64).rev() {
            b.record(0, i, &[i as u8], 0);
        }
        assert_eq!(a, b);
        assert_eq!(a.digest(), b.digest());
        assert_eq!(a.count(), 50);
    }

    #[test]
    fn fingerprint_sensitive_to_content() {
        let mut a = Fingerprint::new();
        let mut b = Fingerprint::new();
        a.record(0, 0x100, &[1], 0);
        b.record(0, 0x100, &[2], 0);
        assert_ne!(a.digest(), b.digest());
        let mut c = Fingerprint::new();
        c.record(0, 0x100, &[1], 3); // different status
        assert_ne!(a.digest(), c.digest());
        let mut d = Fingerprint::new();
        d.record(1, 0x100, &[1], 0); // different opcode
        assert_ne!(a.digest(), d.digest());
    }

    #[test]
    fn fingerprint_detects_duplicates() {
        let mut a = Fingerprint::new();
        let mut b = Fingerprint::new();
        a.record(0, 1, &[], 0);
        b.record(0, 1, &[], 0);
        b.record(0, 1, &[], 0);
        assert_ne!(a, b, "duplicate completion must change the digest");
    }

    #[test]
    fn fingerprint_merge_equals_sequential() {
        let mut whole = Fingerprint::new();
        whole.record(0, 1, &[1], 0);
        whole.record(1, 2, &[2], 0);
        let mut p1 = Fingerprint::new();
        p1.record(0, 1, &[1], 0);
        let mut p2 = Fingerprint::new();
        p2.record(1, 2, &[2], 0);
        p1.merge(&p2);
        assert_eq!(whole, p1);
    }

    #[test]
    fn fingerprint_record_pair_uses_right_data() {
        let read = TransactionRequest::builder(Opcode::Read)
            .address(0x10)
            .build()
            .unwrap();
        let resp = TransactionResponse::new(
            RespStatus::Okay,
            MstAddr::new(0),
            SlvAddr::new(0),
            Tag::ZERO,
            vec![0xAA, 0xBB, 0xCC, 0xDD],
        );
        let mut fp1 = Fingerprint::new();
        fp1.record_pair(&read, &resp);
        let mut fp2 = Fingerprint::new();
        fp2.record(Opcode::Read.encode(), 0x10, &[0xAA, 0xBB, 0xCC, 0xDD], 0);
        assert_eq!(fp1, fp2);
    }

    #[test]
    fn display_formats() {
        let req = TransactionRequest::builder(Opcode::Read)
            .address(0x20)
            .build()
            .unwrap();
        assert!(req.to_string().contains("RD"));
        let fp = Fingerprint::new();
        assert!(fp.to_string().starts_with("fp:"));
    }
}
