//! Ordering models and the NIU tag-assignment policy — the centrepiece of
//! paper §3.
//!
//! The sockets disagree on ordering:
//!
//! - **AHB, PVCI, BVCI** are *fully ordered*: every response returns in
//!   request order.
//! - **OCP** is ordered *within a thread* (`ThreadID`); threads are
//!   mutually unordered.
//! - **AXI, AVCI** attach *transaction IDs* (`TID`): same-ID transactions
//!   are ordered, different IDs are not, and the ID space is large and
//!   sparse.
//!
//! The Arteris transaction layer absorbs all three with one mechanism: the
//! packet `Tag` field plus a per-NIU **assignment policy** mapping socket
//! streams to tags. [`OrderingPolicy`] implements that policy, including
//! the two resource knobs the paper calls out — how many transactions may
//! be outstanding simultaneously and whether different targets may be
//! outstanding at once — which let an NIU "scale its gate count to its
//! expected performance within the system".

use crate::node::SlvAddr;
use crate::tag::Tag;
use std::collections::HashMap;
use std::fmt;

/// A socket-level stream identifier: 0 for fully-ordered sockets, the
/// `ThreadID` for OCP, the transaction ID for AXI/AVCI.
///
/// # Examples
///
/// ```
/// use noc_transaction::StreamId;
/// let s = StreamId::new(5);
/// assert_eq!(s.raw(), 5);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct StreamId(u16);

impl StreamId {
    /// Stream 0, the only stream of a fully-ordered socket.
    pub const ZERO: StreamId = StreamId(0);

    /// Creates a stream id.
    pub const fn new(raw: u16) -> Self {
        StreamId(raw)
    }

    /// Raw value.
    pub const fn raw(self) -> u16 {
        self.0
    }
}

impl fmt::Display for StreamId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "stream {}", self.0)
    }
}

impl From<u16> for StreamId {
    fn from(raw: u16) -> Self {
        StreamId(raw)
    }
}

/// The three socket ordering models of paper §3.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum OrderingModel {
    /// Fully ordered between requests and responses (AHB, PVCI, BVCI).
    /// Every transaction uses [`Tag::ZERO`].
    FullyOrdered,
    /// Ordered within each of `threads` threads, unordered across threads
    /// (OCP). `ThreadID` maps directly onto the tag.
    Threaded {
        /// Number of socket threads (= number of tags used).
        threads: u8,
    },
    /// ID-based (AXI, AVCI): a sparse socket ID space is *renamed* onto a
    /// bounded pool of `tags` NoC tags; same-ID requests share a tag (and
    /// hence stay ordered), distinct IDs grab free tags.
    IdBased {
        /// Size of the NoC tag pool (renaming table capacity).
        tags: u8,
    },
}

impl OrderingModel {
    /// The number of distinct tags this model can emit.
    pub const fn tag_count(self) -> u8 {
        match self {
            OrderingModel::FullyOrdered => 1,
            OrderingModel::Threaded { threads } => threads,
            OrderingModel::IdBased { tags } => tags,
        }
    }
}

impl fmt::Display for OrderingModel {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            OrderingModel::FullyOrdered => write!(f, "fully-ordered"),
            OrderingModel::Threaded { threads } => write!(f, "threaded({threads})"),
            OrderingModel::IdBased { tags } => write!(f, "id-based({tags} tags)"),
        }
    }
}

/// How an NIU keeps same-tag responses in order across multiple targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum TargetRule {
    /// Low-gate-count option: a tag with outstanding transactions to target
    /// A must drain before issuing to target B (response order is then
    /// guaranteed by per-target FIFO delivery in the fabric).
    #[default]
    StallOnSwitch,
    /// High-performance option: issue to any target immediately; the NIU
    /// carries a reorder buffer that restores same-tag order. Costs area
    /// (see `noc-area`).
    Interleave,
}

impl fmt::Display for TargetRule {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TargetRule::StallOnSwitch => write!(f, "stall-on-target-switch"),
            TargetRule::Interleave => write!(f, "interleave(reorder-buffer)"),
        }
    }
}

/// Why [`OrderingPolicy::try_issue`] refused to issue right now.
///
/// These are *back-pressure* conditions, not errors: the NIU retries next
/// cycle.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum IssueBlock {
    /// The global outstanding-transaction budget is exhausted.
    TableFull,
    /// The per-tag in-flight limit is reached.
    TagBusy {
        /// Tag at its limit.
        tag: Tag,
    },
    /// Issuing would reorder same-tag responses across targets
    /// (only under [`TargetRule::StallOnSwitch`]).
    TargetHazard {
        /// Tag with outstanding traffic to a different target.
        tag: Tag,
        /// The target currently outstanding.
        busy_with: SlvAddr,
    },
    /// No free tag in the renaming pool (ID-based model only).
    NoFreeTag,
}

impl fmt::Display for IssueBlock {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            IssueBlock::TableFull => write!(f, "transaction table full"),
            IssueBlock::TagBusy { tag } => write!(f, "{tag} at per-tag limit"),
            IssueBlock::TargetHazard { tag, busy_with } => {
                write!(f, "{tag} busy with {busy_with}")
            }
            IssueBlock::NoFreeTag => write!(f, "no free tag in renaming pool"),
        }
    }
}

/// Configuration or usage errors for [`OrderingPolicy`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PolicyError {
    /// Model requires at least one tag/thread.
    ZeroTags,
    /// `max_outstanding` must be at least 1.
    ZeroOutstanding,
    /// A thread id was presented that exceeds the configured thread count.
    StreamOutOfRange {
        /// The offending stream.
        stream: StreamId,
        /// Number of threads configured.
        threads: u8,
    },
    /// A completion arrived for a tag with nothing outstanding.
    SpuriousCompletion {
        /// The offending tag.
        tag: Tag,
    },
}

impl fmt::Display for PolicyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PolicyError::ZeroTags => write!(f, "ordering model must have at least one tag"),
            PolicyError::ZeroOutstanding => write!(f, "max_outstanding must be at least 1"),
            PolicyError::StreamOutOfRange { stream, threads } => {
                write!(f, "{stream} out of range for {threads} threads")
            }
            PolicyError::SpuriousCompletion { tag } => {
                write!(f, "completion for idle {tag}")
            }
        }
    }
}

impl std::error::Error for PolicyError {}

#[derive(Debug, Clone, Default)]
struct TagState {
    outstanding: u32,
    current_target: Option<SlvAddr>,
    /// For the ID-based model: which socket stream currently owns this tag.
    owner: Option<StreamId>,
}

/// The per-NIU field assignment policy: maps socket streams onto
/// `(Tag, outstanding-limits)` while preserving each socket's ordering
/// contract.
///
/// # Examples
///
/// An AXI-style NIU with a 2-entry tag pool renames IDs onto tags:
///
/// ```
/// use noc_transaction::{OrderingModel, OrderingPolicy, SlvAddr, StreamId};
/// let mut p = OrderingPolicy::new(OrderingModel::IdBased { tags: 2 }, 8)?;
/// let t0 = p.try_issue(StreamId::new(100), SlvAddr::new(0)).unwrap();
/// let t1 = p.try_issue(StreamId::new(200), SlvAddr::new(1)).unwrap();
/// assert_ne!(t0, t1);                    // distinct IDs → distinct tags
/// let t2 = p.try_issue(StreamId::new(100), SlvAddr::new(0)).unwrap();
/// assert_eq!(t0, t2);                    // same ID → same tag (stays ordered)
/// assert!(p.try_issue(StreamId::new(300), SlvAddr::new(0)).is_err()); // pool empty
/// # Ok::<(), noc_transaction::PolicyError>(())
/// ```
#[derive(Debug, Clone)]
pub struct OrderingPolicy {
    model: OrderingModel,
    max_outstanding: u32,
    per_tag_limit: u32,
    target_rule: TargetRule,
    tags: Vec<TagState>,
    rename: HashMap<StreamId, Tag>,
    outstanding: u32,
}

impl OrderingPolicy {
    /// Creates a policy for `model` allowing `max_outstanding` transactions
    /// in flight in total, with the default [`TargetRule::StallOnSwitch`]
    /// and no per-tag limit beyond the global one.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::ZeroTags`] or [`PolicyError::ZeroOutstanding`]
    /// on degenerate configurations.
    pub fn new(model: OrderingModel, max_outstanding: u32) -> Result<Self, PolicyError> {
        Self::with_rules(
            model,
            max_outstanding,
            max_outstanding,
            TargetRule::default(),
        )
    }

    /// Full-control constructor.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::ZeroTags`] or [`PolicyError::ZeroOutstanding`]
    /// on degenerate configurations.
    pub fn with_rules(
        model: OrderingModel,
        max_outstanding: u32,
        per_tag_limit: u32,
        target_rule: TargetRule,
    ) -> Result<Self, PolicyError> {
        if model.tag_count() == 0 {
            return Err(PolicyError::ZeroTags);
        }
        if max_outstanding == 0 || per_tag_limit == 0 {
            return Err(PolicyError::ZeroOutstanding);
        }
        Ok(OrderingPolicy {
            model,
            max_outstanding,
            per_tag_limit,
            target_rule,
            tags: vec![TagState::default(); model.tag_count() as usize],
            rename: HashMap::new(),
            outstanding: 0,
        })
    }

    /// The configured ordering model.
    pub fn model(&self) -> OrderingModel {
        self.model
    }

    /// The configured target rule.
    pub fn target_rule(&self) -> TargetRule {
        self.target_rule
    }

    /// Total transactions currently outstanding.
    pub fn outstanding(&self) -> u32 {
        self.outstanding
    }

    /// The global outstanding budget.
    pub fn max_outstanding(&self) -> u32 {
        self.max_outstanding
    }

    /// Attempts to issue a transaction on socket stream `stream` towards
    /// `dst`, returning the NoC tag to stamp into the packet.
    ///
    /// # Errors
    ///
    /// Returns an [`IssueBlock`] back-pressure condition; the caller should
    /// retry on a later cycle.
    ///
    /// # Panics
    ///
    /// Panics if an OCP-style thread id exceeds the configured thread
    /// count — that is a socket protocol violation, not back-pressure.
    pub fn try_issue(&mut self, stream: StreamId, dst: SlvAddr) -> Result<Tag, IssueBlock> {
        if self.outstanding >= self.max_outstanding {
            return Err(IssueBlock::TableFull);
        }
        let tag = match self.model {
            OrderingModel::FullyOrdered => Tag::ZERO,
            OrderingModel::Threaded { threads } => {
                assert!(
                    stream.raw() < threads as u16,
                    "thread {} out of range for {} threads (socket protocol violation)",
                    stream.raw(),
                    threads
                );
                Tag::new(stream.raw() as u8)
            }
            OrderingModel::IdBased { .. } => match self.rename.get(&stream) {
                Some(&t) => t,
                None => match self.free_tag() {
                    Some(t) => t,
                    None => return Err(IssueBlock::NoFreeTag),
                },
            },
        };
        let state = &self.tags[tag.index()];
        if state.outstanding >= self.per_tag_limit {
            return Err(IssueBlock::TagBusy { tag });
        }
        if self.target_rule == TargetRule::StallOnSwitch {
            if let Some(busy_with) = state.current_target {
                if busy_with != dst && state.outstanding > 0 {
                    return Err(IssueBlock::TargetHazard { tag, busy_with });
                }
            }
        }
        // Commit.
        let state = &mut self.tags[tag.index()];
        state.outstanding += 1;
        state.current_target = Some(dst);
        if matches!(self.model, OrderingModel::IdBased { .. }) {
            state.owner = Some(stream);
            self.rename.insert(stream, tag);
        }
        self.outstanding += 1;
        Ok(tag)
    }

    /// Records completion of one transaction on `tag`.
    ///
    /// # Errors
    ///
    /// Returns [`PolicyError::SpuriousCompletion`] if the tag has nothing
    /// outstanding.
    pub fn complete(&mut self, tag: Tag) -> Result<(), PolicyError> {
        let state = self
            .tags
            .get_mut(tag.index())
            .filter(|s| s.outstanding > 0)
            .ok_or(PolicyError::SpuriousCompletion { tag })?;
        state.outstanding -= 1;
        self.outstanding -= 1;
        if state.outstanding == 0 {
            state.current_target = None;
            if let Some(owner) = state.owner.take() {
                self.rename.remove(&owner);
            }
        }
        Ok(())
    }

    /// Outstanding count for one tag.
    pub fn tag_outstanding(&self, tag: Tag) -> u32 {
        self.tags.get(tag.index()).map_or(0, |s| s.outstanding)
    }

    fn free_tag(&self) -> Option<Tag> {
        self.tags
            .iter()
            .position(|s| s.outstanding == 0 && s.owner.is_none())
            .map(|i| Tag::new(i as u8))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn s(n: u16) -> StreamId {
        StreamId::new(n)
    }
    fn d(n: u16) -> SlvAddr {
        SlvAddr::new(n)
    }

    #[test]
    fn fully_ordered_always_tag_zero() {
        let mut p = OrderingPolicy::new(OrderingModel::FullyOrdered, 4).unwrap();
        let t = p.try_issue(s(0), d(1)).unwrap();
        assert_eq!(t, Tag::ZERO);
        let t = p.try_issue(s(0), d(1)).unwrap();
        assert_eq!(t, Tag::ZERO);
        assert_eq!(p.outstanding(), 2);
    }

    #[test]
    fn fully_ordered_stalls_on_target_switch() {
        let mut p = OrderingPolicy::new(OrderingModel::FullyOrdered, 4).unwrap();
        p.try_issue(s(0), d(1)).unwrap();
        let block = p.try_issue(s(0), d(2)).unwrap_err();
        assert_eq!(
            block,
            IssueBlock::TargetHazard {
                tag: Tag::ZERO,
                busy_with: d(1)
            }
        );
        // After completion the switch is allowed.
        p.complete(Tag::ZERO).unwrap();
        assert!(p.try_issue(s(0), d(2)).is_ok());
    }

    #[test]
    fn interleave_rule_permits_target_switch() {
        let mut p =
            OrderingPolicy::with_rules(OrderingModel::FullyOrdered, 4, 4, TargetRule::Interleave)
                .unwrap();
        p.try_issue(s(0), d(1)).unwrap();
        assert!(p.try_issue(s(0), d(2)).is_ok());
    }

    #[test]
    fn table_full_blocks() {
        let mut p = OrderingPolicy::new(OrderingModel::FullyOrdered, 2).unwrap();
        p.try_issue(s(0), d(1)).unwrap();
        p.try_issue(s(0), d(1)).unwrap();
        assert_eq!(p.try_issue(s(0), d(1)), Err(IssueBlock::TableFull));
        p.complete(Tag::ZERO).unwrap();
        assert!(p.try_issue(s(0), d(1)).is_ok());
    }

    #[test]
    fn per_tag_limit_blocks() {
        let mut p =
            OrderingPolicy::with_rules(OrderingModel::FullyOrdered, 8, 1, TargetRule::default())
                .unwrap();
        p.try_issue(s(0), d(1)).unwrap();
        assert_eq!(
            p.try_issue(s(0), d(1)),
            Err(IssueBlock::TagBusy { tag: Tag::ZERO })
        );
    }

    #[test]
    fn threaded_maps_thread_to_tag() {
        let mut p = OrderingPolicy::new(OrderingModel::Threaded { threads: 4 }, 8).unwrap();
        assert_eq!(p.try_issue(s(0), d(1)).unwrap(), Tag::new(0));
        assert_eq!(p.try_issue(s(3), d(2)).unwrap(), Tag::new(3));
        // independent threads do not hazard each other
        assert_eq!(p.try_issue(s(1), d(3)).unwrap(), Tag::new(1));
    }

    #[test]
    fn threaded_per_thread_target_hazard() {
        let mut p = OrderingPolicy::new(OrderingModel::Threaded { threads: 2 }, 8).unwrap();
        p.try_issue(s(1), d(1)).unwrap();
        assert!(matches!(
            p.try_issue(s(1), d(2)),
            Err(IssueBlock::TargetHazard { .. })
        ));
        // other thread unaffected
        assert!(p.try_issue(s(0), d(2)).is_ok());
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn threaded_rejects_out_of_range_thread() {
        let mut p = OrderingPolicy::new(OrderingModel::Threaded { threads: 2 }, 8).unwrap();
        let _ = p.try_issue(s(5), d(0));
    }

    #[test]
    fn id_based_renames_and_reuses() {
        let mut p = OrderingPolicy::new(OrderingModel::IdBased { tags: 2 }, 8).unwrap();
        let t_a = p.try_issue(s(0xAB), d(0)).unwrap();
        let t_b = p.try_issue(s(0xCD), d(1)).unwrap();
        assert_ne!(t_a, t_b);
        assert_eq!(p.try_issue(s(0xAB), d(0)).unwrap(), t_a);
        assert_eq!(p.try_issue(s(0xEF), d(0)), Err(IssueBlock::NoFreeTag));
    }

    #[test]
    fn id_based_frees_tag_after_drain() {
        let mut p = OrderingPolicy::new(OrderingModel::IdBased { tags: 1 }, 8).unwrap();
        let t = p.try_issue(s(7), d(0)).unwrap();
        assert_eq!(p.try_issue(s(9), d(0)), Err(IssueBlock::NoFreeTag));
        p.complete(t).unwrap();
        // tag recycled for a new ID
        assert_eq!(p.try_issue(s(9), d(0)).unwrap(), t);
    }

    #[test]
    fn id_based_same_id_target_hazard_preserves_order() {
        let mut p = OrderingPolicy::new(OrderingModel::IdBased { tags: 4 }, 8).unwrap();
        p.try_issue(s(1), d(0)).unwrap();
        assert!(matches!(
            p.try_issue(s(1), d(1)),
            Err(IssueBlock::TargetHazard { .. })
        ));
    }

    #[test]
    fn spurious_completion_detected() {
        let mut p = OrderingPolicy::new(OrderingModel::FullyOrdered, 2).unwrap();
        assert_eq!(
            p.complete(Tag::ZERO),
            Err(PolicyError::SpuriousCompletion { tag: Tag::ZERO })
        );
        assert_eq!(
            p.complete(Tag::new(200)),
            Err(PolicyError::SpuriousCompletion { tag: Tag::new(200) })
        );
    }

    #[test]
    fn degenerate_configs_rejected() {
        assert_eq!(
            OrderingPolicy::new(OrderingModel::Threaded { threads: 0 }, 4).unwrap_err(),
            PolicyError::ZeroTags
        );
        assert_eq!(
            OrderingPolicy::new(OrderingModel::FullyOrdered, 0).unwrap_err(),
            PolicyError::ZeroOutstanding
        );
    }

    #[test]
    fn tag_outstanding_counts() {
        let mut p = OrderingPolicy::new(OrderingModel::Threaded { threads: 2 }, 8).unwrap();
        p.try_issue(s(1), d(0)).unwrap();
        p.try_issue(s(1), d(0)).unwrap();
        assert_eq!(p.tag_outstanding(Tag::new(1)), 2);
        assert_eq!(p.tag_outstanding(Tag::new(0)), 0);
        assert_eq!(p.tag_outstanding(Tag::new(99)), 0);
    }

    #[test]
    fn model_tag_counts() {
        assert_eq!(OrderingModel::FullyOrdered.tag_count(), 1);
        assert_eq!(OrderingModel::Threaded { threads: 3 }.tag_count(), 3);
        assert_eq!(OrderingModel::IdBased { tags: 8 }.tag_count(), 8);
    }

    #[test]
    fn displays() {
        assert_eq!(OrderingModel::FullyOrdered.to_string(), "fully-ordered");
        assert!(OrderingModel::IdBased { tags: 4 }.to_string().contains("4"));
        assert!(IssueBlock::TableFull.to_string().contains("full"));
        assert!(TargetRule::Interleave.to_string().contains("reorder"));
    }
}
