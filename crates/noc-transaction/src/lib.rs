//! The VC-neutral NoC **transaction layer** — the primary contribution of
//! P. Martin, *"Design of a Virtual Component Neutral Network-on-Chip
//! Transaction Layer"* (DATE 2005).
//!
//! The transaction layer defines the communication primitives available to
//! IP blocks plugged into the NoC, independently of both the socket protocol
//! each block speaks (AHB 2.0, AXI, OCP, VCI flavours, proprietary) and of
//! how the transport layer moves packets (wormhole vs store-and-forward,
//! topology, QoS) — which it never sees.
//!
//! Key concepts, mirroring the paper:
//!
//! - [`TransactionRequest`] / [`TransactionResponse`]: the neutral
//!   primitives, carrying a canonical [`Opcode`], [`Burst`] description and
//!   byte-lane data.
//! - [`MstAddr`], [`SlvAddr`] and [`Tag`]: the three packet fields the
//!   Arteris protocol uses to encode *every* socket ordering model. A
//!   per-NIU [`OrderingPolicy`] assigns them from socket-specific
//!   information (AHB's implicit order, OCP's `ThreadID`, AXI's transaction
//!   ID).
//! - [`TransactionTable`]: the NIU "state lookup table" that tracks
//!   outstanding transactions; its capacity is the knob that "scales gate
//!   count to expected performance".
//! - [`ExclusiveMonitor`]: the NIU-side state that implements AXI exclusive
//!   access / OCP lazy synchronisation with nothing but one user-defined
//!   packet bit ([`services::ServiceBits::EXCLUSIVE`]).
//! - [`ServiceBits`]: the optional "NoC services" field — user-defined
//!   packet bits that extend the transaction layer without touching the
//!   transport or physical layers.
//!
//! # Examples
//!
//! ```
//! use noc_transaction::{Burst, MstAddr, Opcode, SlvAddr, Tag, TransactionRequest};
//!
//! let req = TransactionRequest::builder(Opcode::Read)
//!     .address(0x4000_0000)
//!     .burst(Burst::incr(4, 4)?)
//!     .source(MstAddr::new(2))
//!     .destination(SlvAddr::new(7))
//!     .tag(Tag::new(1))
//!     .build()?;
//! assert_eq!(req.total_bytes(), 16);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

pub mod addr;
pub mod burst;
pub mod endian;
pub mod exclusive;
pub mod node;
pub mod opcode;
pub mod ordering;
pub mod request;
pub mod services;
pub mod table;
pub mod tag;

pub use addr::{Addr, AddressMap, AddressRange, DecodeError};
pub use burst::{Burst, BurstError, BurstKind};
pub use endian::Endianness;
pub use exclusive::{ExclusiveMonitor, ExclusiveOutcome, LockArbiter};
pub use node::{MstAddr, SlvAddr};
pub use opcode::{Opcode, RespStatus};
pub use ordering::{IssueBlock, OrderingModel, OrderingPolicy, PolicyError, StreamId, TargetRule};
pub use request::{
    Fingerprint, RequestBuilder, TransactionError, TransactionRequest, TransactionResponse,
};
pub use services::{ServiceBits, ServiceConfig};
pub use table::{TableEntry, TableError, TransactionTable};
pub use tag::Tag;
