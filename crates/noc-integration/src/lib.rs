//! Host crate for the workspace integration tests located in the
//! repository-level `tests/` directory.
