//! Criterion micro-benchmarks: simulator performance for each subsystem
//! behind the paper experiments (one group per experiment id).

use criterion::{criterion_group, criterion_main, Criterion};
use noc_niu::{encode_request, decode_request};
use noc_transaction::{Burst, MstAddr, Opcode, OrderingModel, OrderingPolicy, SlvAddr, StreamId, Tag, TransactionRequest};
use noc_transport::{Flit, Header, Packet, PortId, RoutingTable, Switch, SwitchConfig};
use noc_workloads::{SetTop, SetTopConfig};
use std::hint::black_box;

fn bench_fig1_soc(c: &mut Criterion) {
    let mut g = c.benchmark_group("exp_fig1_soc");
    g.sample_size(10);
    g.bench_function("set_top_8cmds_full_run", |b| {
        b.iter(|| {
            let mut soc = SetTop::new(SetTopConfig::new(8, 1)).build_noc();
            let report = soc.run(1_000_000);
            assert!(report.all_done);
            black_box(report.cycles)
        })
    });
    g.finish();
}

fn bench_fig2_baselines(c: &mut Criterion) {
    use noc_baseline::Interconnect;
    let mut g = c.benchmark_group("exp_fig2_baselines");
    g.sample_size(10);
    g.bench_function("bridged_8cmds_full_run", |b| {
        b.iter(|| {
            let mut ic = SetTop::new(SetTopConfig::new(8, 1)).build_bridged();
            assert!(ic.run(2_000_000));
            black_box(ic.now())
        })
    });
    g.bench_function("bus_8cmds_full_run", |b| {
        b.iter(|| {
            let mut bus = SetTop::new(SetTopConfig::new(8, 1)).build_bus();
            assert!(bus.run(2_000_000));
            black_box(bus.now())
        })
    });
    g.finish();
}

fn bench_ordering_policy(c: &mut Criterion) {
    let mut g = c.benchmark_group("exp_ordering_policy");
    g.bench_function("id_rename_issue_complete", |b| {
        b.iter(|| {
            let mut p = OrderingPolicy::new(OrderingModel::IdBased { tags: 8 }, 16).unwrap();
            for i in 0..64u16 {
                if let Ok(tag) = p.try_issue(StreamId::new(i % 12), SlvAddr::new(i % 4)) {
                    p.complete(tag).unwrap();
                }
            }
            black_box(p.outstanding())
        })
    });
    g.finish();
}

fn bench_niu_codec(c: &mut Criterion) {
    let mut g = c.benchmark_group("exp_services_codec");
    let req = TransactionRequest::builder(Opcode::Write)
        .address(0x1234)
        .burst(Burst::incr(16, 8).unwrap())
        .source(MstAddr::new(1))
        .destination(SlvAddr::new(2))
        .tag(Tag::new(3))
        .data(vec![0xAB; 128])
        .build()
        .unwrap();
    g.bench_function("encode_decode_128B_request", |b| {
        b.iter(|| {
            let pkt = encode_request(black_box(&req));
            black_box(decode_request(&pkt).unwrap())
        })
    });
    g.finish();
}

fn bench_switch(c: &mut Criterion) {
    let mut g = c.benchmark_group("exp_scale_switch");
    g.bench_function("switch_5x5_tick_loaded", |b| {
        let mut table = RoutingTable::new(8);
        for d in 0..8 {
            table.set(d, PortId((d % 5) as u8));
        }
        b.iter(|| {
            let mut sw = Switch::new(SwitchConfig::wormhole(5, 5), table.clone());
            for o in 0..5 {
                sw.set_output_credits(o, 1000);
            }
            for i in 0..5u16 {
                let pkt = Packet::new(Header::request(i % 8, i, 0), vec![0; 32]);
                for f in pkt.to_flits_with_id(8, i as u64) {
                    sw.accept(i as usize, f);
                }
            }
            let mut sent = 0;
            for _ in 0..40 {
                sent += sw.tick().sent.len();
            }
            black_box(sent)
        })
    });
    g.finish();
}

fn bench_packetisation(c: &mut Criterion) {
    let mut g = c.benchmark_group("exp_layering_flits");
    let pkt = Packet::new(Header::request(1, 2, 3), vec![0xCD; 256]);
    for width in [4usize, 8, 16] {
        g.bench_function(format!("to_flits_256B_w{width}"), |b| {
            b.iter(|| black_box(pkt.to_flits(black_box(width))).len())
        });
    }
    g.bench_function("reassemble_256B_w8", |b| {
        let flits: Vec<Flit> = pkt.to_flits(8);
        b.iter(|| black_box(Packet::from_flits(&flits).unwrap()))
    });
    g.finish();
}

criterion_group!(
    benches,
    bench_fig1_soc,
    bench_fig2_baselines,
    bench_ordering_policy,
    bench_niu_codec,
    bench_switch,
    bench_packetisation
);
criterion_main!(benches);
