//! Micro-benchmarks: simulator performance for each subsystem behind the
//! paper experiments (one group per experiment id).
//!
//! Self-hosted harness (no external bench framework is available in this
//! build environment): each case is warmed up, then timed over enough
//! iterations to fill a fixed wall-clock budget, reporting mean ns/iter.
//! Run with `cargo bench -p noc-bench`.

use noc_baseline::Interconnect;
use noc_niu::{decode_request, encode_request};
use noc_transaction::{
    Burst, MstAddr, Opcode, OrderingModel, OrderingPolicy, SlvAddr, StreamId, Tag,
    TransactionRequest,
};
use noc_transport::{Flit, Header, Packet, PortId, RoutingTable, Switch, SwitchConfig};
use noc_workloads::{SetTop, SetTopConfig};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Times `f` after warm-up, returning (mean ns/iter, iterations).
fn bench<T>(budget: Duration, mut f: impl FnMut() -> T) -> (f64, u64) {
    // Warm-up: run until 10% of the budget is spent (at least once).
    let warm_until = Instant::now() + budget / 10;
    let mut warm_iters = 0u64;
    let warm_start = Instant::now();
    loop {
        black_box(f());
        warm_iters += 1;
        if Instant::now() >= warm_until {
            break;
        }
    }
    let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
    // Measure: as many iterations as fit the remaining budget.
    let iters = ((budget.as_nanos() as f64 / per_iter) as u64).max(1);
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let total = start.elapsed();
    (total.as_nanos() as f64 / iters as f64, iters)
}

fn case<T>(group: &str, name: &str, budget_ms: u64, f: impl FnMut() -> T) {
    let (ns, iters) = bench(Duration::from_millis(budget_ms), f);
    println!("{group:<22} {name:<28} {ns:>14.0} ns/iter  ({iters} iters)");
}

fn main() {
    println!("{:<22} {:<28} {:>22}", "group", "case", "mean");

    case("exp_fig1_soc", "set_top_8cmds_full_run", 500, || {
        let mut soc = SetTop::new(SetTopConfig::new(8, 1)).build_noc();
        let report = soc.run(1_000_000);
        assert!(report.all_done);
        report.cycles
    });

    case("exp_fig2_baselines", "bridged_8cmds_full_run", 500, || {
        let mut ic = SetTop::new(SetTopConfig::new(8, 1)).build_bridged();
        assert!(ic.run(2_000_000));
        ic.now()
    });
    case("exp_fig2_baselines", "bus_8cmds_full_run", 500, || {
        let mut bus = SetTop::new(SetTopConfig::new(8, 1)).build_bus();
        assert!(bus.run(2_000_000));
        bus.now()
    });

    case(
        "exp_ordering_policy",
        "id_rename_issue_complete",
        200,
        || {
            let mut p = OrderingPolicy::new(OrderingModel::IdBased { tags: 8 }, 16).unwrap();
            for i in 0..64u16 {
                if let Ok(tag) = p.try_issue(StreamId::new(i % 12), SlvAddr::new(i % 4)) {
                    p.complete(tag).unwrap();
                }
            }
            p.outstanding()
        },
    );

    let req = TransactionRequest::builder(Opcode::Write)
        .address(0x1234)
        .burst(Burst::incr(16, 8).unwrap())
        .source(MstAddr::new(1))
        .destination(SlvAddr::new(2))
        .tag(Tag::new(3))
        .data(vec![0xAB; 128])
        .build()
        .unwrap();
    case(
        "exp_services_codec",
        "encode_decode_128B_request",
        200,
        || {
            let pkt = encode_request(black_box(&req));
            decode_request(&pkt).unwrap()
        },
    );

    let mut table = RoutingTable::new(8);
    for d in 0..8 {
        table.set(d, PortId((d % 5) as u8));
    }
    case("exp_scale_switch", "switch_5x5_tick_loaded", 200, || {
        let mut sw = Switch::new(SwitchConfig::wormhole(5, 5), table.clone());
        for o in 0..5 {
            sw.set_output_credits(o, 1000);
        }
        for i in 0..5u16 {
            let pkt = Packet::new(Header::request(i % 8, i, 0), vec![0; 32]);
            for f in pkt.to_flits_with_id(8, i as u64) {
                sw.accept(i as usize, f);
            }
        }
        let mut sent = 0;
        for _ in 0..40 {
            sent += sw.tick().sent.len();
        }
        sent
    });

    let pkt = Packet::new(Header::request(1, 2, 3), vec![0xCD; 256]);
    for width in [4usize, 8, 16] {
        case(
            "exp_layering_flits",
            &format!("to_flits_256B_w{width}"),
            200,
            || pkt.to_flits(black_box(width)).len(),
        );
    }
    let flits: Vec<Flit> = pkt.to_flits(8);
    case("exp_layering_flits", "reassemble_256B_w8", 200, || {
        Packet::from_flits(&flits).unwrap()
    });
}
