//! Micro-benchmarks: simulator performance for each subsystem behind the
//! paper experiments (one group per experiment id).
//!
//! Self-hosted harness (no external bench framework is available in this
//! build environment): each case is warmed up, then timed over enough
//! iterations to fill a fixed wall-clock budget, reporting mean ns/iter.
//! Run with `cargo bench -p noc-bench`. When the `BENCH_JSON` environment
//! variable names a file, the results are additionally written there as a
//! JSON array (one object per case) so CI can archive the perf
//! trajectory run over run.

use noc_niu::{decode_request, encode_request};
use noc_scenario::{Simulation, StepMode};
use noc_transaction::{
    Burst, MstAddr, Opcode, OrderingModel, OrderingPolicy, SlvAddr, StreamId, Tag,
    TransactionRequest,
};
use noc_transport::{Flit, Header, Packet, PortId, RoutingTable, Switch, SwitchConfig};
use noc_workloads::{SetTop, SetTopConfig};
use std::hint::black_box;
use std::time::{Duration, Instant};

/// Times `f` after warm-up, returning (mean ns/iter, iterations).
fn bench<T>(budget: Duration, mut f: impl FnMut() -> T) -> (f64, u64) {
    // Warm-up: run until 10% of the budget is spent (at least once).
    let warm_until = Instant::now() + budget / 10;
    let mut warm_iters = 0u64;
    let warm_start = Instant::now();
    loop {
        black_box(f());
        warm_iters += 1;
        if Instant::now() >= warm_until {
            break;
        }
    }
    let per_iter = warm_start.elapsed().as_nanos() as f64 / warm_iters as f64;
    // Measure: as many iterations as fit the remaining budget.
    let iters = ((budget.as_nanos() as f64 / per_iter) as u64).max(1);
    let start = Instant::now();
    for _ in 0..iters {
        black_box(f());
    }
    let total = start.elapsed();
    (total.as_nanos() as f64 / iters as f64, iters)
}

/// One measured case, for the text table and the JSON artifact.
struct CaseResult {
    group: String,
    name: String,
    ns_per_iter: f64,
    iters: u64,
}

#[derive(Default)]
struct Harness {
    results: Vec<CaseResult>,
}

impl Harness {
    fn case<T>(&mut self, group: &str, name: &str, budget_ms: u64, f: impl FnMut() -> T) {
        let (ns, iters) = bench(Duration::from_millis(budget_ms), f);
        println!("{group:<22} {name:<28} {ns:>14.0} ns/iter  ({iters} iters)");
        self.results.push(CaseResult {
            group: group.to_owned(),
            name: name.to_owned(),
            ns_per_iter: ns,
            iters,
        });
    }

    /// Writes the results as JSON to `$BENCH_JSON` if set (hand-rolled:
    /// group/name are workspace-controlled identifiers, no escaping
    /// needed). Cargo runs bench binaries with the *package* directory
    /// (`crates/noc-bench`) as working directory, so a relative path
    /// would land there, invisible to CI's repo-root `cat`/upload steps;
    /// the rebasing below deliberately forces relative paths onto the
    /// workspace root instead, next to the committed
    /// `BENCH_baseline.json` anchor. Do not remove it as "redundant".
    fn write_json(&self) {
        let Ok(path) = std::env::var("BENCH_JSON") else {
            return;
        };
        let path = std::path::PathBuf::from(&path);
        let path = if path.is_absolute() {
            path
        } else {
            std::path::Path::new(env!("CARGO_MANIFEST_DIR"))
                .join("../..")
                .join(path)
        };
        let mut out = String::from("[\n");
        for (i, r) in self.results.iter().enumerate() {
            let sep = if i + 1 == self.results.len() { "" } else { "," };
            out.push_str(&format!(
                "  {{\"group\": \"{}\", \"case\": \"{}\", \"ns_per_iter\": {:.1}, \"iters\": {}}}{sep}\n",
                r.group, r.name, r.ns_per_iter, r.iters
            ));
        }
        out.push_str("]\n");
        std::fs::write(&path, out).expect("BENCH_JSON path is writable");
        println!("\nwrote {} cases to {}", self.results.len(), path.display());
    }
}

fn set_top(commands: usize, seed: u64) -> (noc_scenario::ScenarioSpec, SetTopConfig) {
    let cfg = SetTopConfig::new(commands, seed);
    (SetTop::new(cfg).spec(), cfg)
}

/// The one-shot runner the serve benchmark spawns: parse one scenario
/// file, build the NoC backend, run to completion — the work a fresh
/// `scn` process does per request, startup cost included.
fn oneshot_point(path: &str) {
    let text = std::fs::read_to_string(path).expect("point file");
    let spec = noc_scenario::ScenarioSpec::from_text(&text).expect("point parses");
    let mut sim = spec
        .build(&noc_scenario::Backend::noc())
        .expect("consistent");
    assert!(sim.run_until(1_000_000));
    println!("{} cycles, {} steps", sim.now(), sim.executed_steps());
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--oneshot") {
        oneshot_point(&args[i + 1]);
        return;
    }
    let mut h = Harness::default();
    println!("{:<22} {:<28} {:>22}", "group", "case", "mean");

    h.case("exp_fig1_soc", "set_top_8cmds_full_run", 500, || {
        let (spec, cfg) = set_top(8, 1);
        let mut sim = spec.build_noc(cfg.noc).expect("consistent");
        assert!(sim.run_until(1_000_000));
        sim.now()
    });

    h.case("exp_fig2_baselines", "bridged_8cmds_full_run", 500, || {
        let (spec, cfg) = set_top(8, 1);
        let mut sim = spec.build_bridged(cfg.bridge).expect("consistent");
        assert!(sim.run_until(2_000_000));
        sim.now()
    });
    h.case("exp_fig2_baselines", "bus_8cmds_full_run", 500, || {
        let (spec, cfg) = set_top(8, 1);
        let mut sim = spec.build_bus(cfg.bus).expect("consistent");
        assert!(sim.run_until(2_000_000));
        sim.now()
    });

    // Quiescence-aware stepping vs dense polling on the same workload:
    // the horizon path must win on idle-dominated (sparse) runs and the
    // two must report identical cycle counts (equivalence is pinned
    // functionally in tests/scenario_api.rs). Specs are constructed
    // outside the timed region; the `build_only` cases isolate the
    // constant compile cost both stepping cases still pay per
    // iteration (a run consumes its simulation).
    let sparse_set_top = {
        let (mut spec, cfg) = set_top(4, 9);
        for ini in &mut spec.initiators {
            for cmd in ini.program.explicit_mut().unwrap() {
                cmd.delay_before = cmd.delay_before.saturating_mul(100).max(200);
            }
        }
        (spec, cfg)
    };
    {
        let (spec, cfg) = &sparse_set_top;
        h.case("step_mode", "set_top_sparse_build_only", 200, || {
            spec.build_noc(cfg.noc).expect("consistent").now()
        });
    }
    for (name, mode) in [
        ("set_top_sparse_horizon", StepMode::Horizon),
        ("set_top_sparse_dense", StepMode::Dense),
    ] {
        let (spec, cfg) = &sparse_set_top;
        h.case("step_mode", name, 500, move || {
            let mut sim = spec.build_noc(cfg.noc).expect("consistent");
            assert!(sim.run_until_with(5_000_000, mode));
            sim.now()
        });
    }

    // The same comparison on a sparse exp_scale-style point: a 4x4 mesh
    // of AXI readers at a low injection rate (long command gaps), plus
    // the 8x8/16x16 instances of the same fixed traffic spread over
    // growing fabrics — the scaling rows that pin "per-cycle cost tracks
    // traffic, not fabric size" as a measurement rather than a claim.
    let sparse_mesh = noc_bench::scenarios::sparse_mesh_spec(4);
    h.case("step_mode", "mesh_4x4_sparse_build_only", 200, || {
        sparse_mesh
            .build(&noc_scenario::Backend::noc())
            .expect("consistent")
            .now()
    });
    for (name, mode) in [
        ("mesh_4x4_sparse_horizon", StepMode::Horizon),
        ("mesh_4x4_sparse_dense", StepMode::Dense),
    ] {
        let spec = &sparse_mesh;
        h.case("step_mode", name, 500, move || {
            let mut sim = spec
                .build(&noc_scenario::Backend::noc())
                .expect("consistent");
            assert!(sim.run_until_with(5_000_000, mode));
            sim.now()
        });
    }
    for w in [8usize, 16, 32] {
        let spec = if w == 32 {
            noc_bench::scenarios::sparse_mesh_32_spec()
        } else {
            noc_bench::scenarios::sparse_mesh_spec(w)
        };
        // Build cost scales with switch count (routing tables over w*w
        // nodes) and dominates the larger rows, so pin it separately —
        // the per-cycle scaling claim reads from horizon minus build.
        {
            let spec = spec.clone();
            h.case(
                "step_mode",
                &format!("mesh_{w}x{w}_sparse_build_only"),
                200,
                move || {
                    spec.build(&noc_scenario::Backend::noc())
                        .expect("consistent")
                        .now()
                },
            );
        }
        // The meshes big enough to shard also get a 4-region parallel
        // row; its iteration pays build + region partitioning + the
        // threaded run, so the speedup gate below subtracts build_only
        // from both sides before comparing.
        let mut modes = vec![("horizon", StepMode::Horizon), ("dense", StepMode::Dense)];
        if w >= 16 {
            modes.push(("sharded4", StepMode::Sharded { threads: 4 }));
        }
        for (mode_name, mode) in modes {
            let spec = spec.clone();
            h.case(
                "step_mode",
                &format!("mesh_{w}x{w}_sparse_{mode_name}"),
                300,
                move || {
                    let mut sim = spec
                        .build(&noc_scenario::Backend::noc())
                        .expect("consistent");
                    assert!(sim.run_until_with(5_000_000, mode));
                    sim.now()
                },
            );
        }
    }
    // Sharding must buy real wall-clock on the big meshes: with 4
    // workers the stepping phase (mode minus build) must run at least
    // 2.5x faster than the single-thread horizon reference. Only
    // meaningful where 4 workers can actually run in parallel, so the
    // gate arms itself on the host's core count instead of silently
    // measuring oversubscription.
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    let step_ns = |h: &Harness, name: &str| {
        h.results
            .iter()
            .find(|r| r.group == "step_mode" && r.name == name)
            .expect("case just ran")
            .ns_per_iter
    };
    for w in [16usize, 32] {
        let build = step_ns(&h, &format!("mesh_{w}x{w}_sparse_build_only"));
        let single = step_ns(&h, &format!("mesh_{w}x{w}_sparse_horizon")) - build;
        let sharded = step_ns(&h, &format!("mesh_{w}x{w}_sparse_sharded4")) - build;
        let speedup = single / sharded;
        println!(
            "{:<22} {:<28} {speedup:>20.1}x",
            "step_mode",
            format!("mesh_{w}x{w}_sharded_speedup")
        );
        if cores >= 4 {
            assert!(
                speedup >= 2.5,
                "4-way sharding must advance the {w}x{w} sparse mesh at least 2.5x \
                 faster than single-thread horizon stepping, got {speedup:.2}x"
            );
        } else {
            println!("(speedup gate skipped: {cores} core(s) available, need 4)");
        }
    }

    // Partition quality on the hotspot mesh: default round-robin
    // placement parks every endpoint on switches 0..11 of the 16x16
    // fabric, so the naive band cut puts all traffic in region 0 (zero
    // parallelism), while the balanced cut — the build default, fed by
    // the static load estimate — splits the endpoint cluster itself.
    let hotspot = noc_bench::scenarios::zipf_hotspot_mesh16_spec();
    {
        let spec = hotspot.clone();
        h.case(
            "step_mode",
            "zipf_hotspot_16x16_build_only",
            200,
            move || {
                spec.build(&noc_scenario::Backend::noc())
                    .expect("consistent")
                    .now()
            },
        );
    }
    let band_hotspot = {
        let cfg = noc_scenario::NocConfigSpec::new()
            .with_shards(4)
            .with_assignment(noc_bench::scenarios::band_assignment(256, 4));
        hotspot.clone().with_config(cfg)
    };
    for (mode_name, spec) in [
        ("sharded4_band", band_hotspot),
        ("sharded4_balanced", hotspot.clone()),
    ] {
        h.case(
            "step_mode",
            &format!("zipf_hotspot_16x16_{mode_name}"),
            300,
            move || {
                let mut sim = spec
                    .build(&noc_scenario::Backend::noc())
                    .expect("consistent");
                assert!(sim.run_until_with(5_000_000, StepMode::Sharded { threads: 4 }));
                sim.now()
            },
        );
    }
    {
        let build = step_ns(&h, "zipf_hotspot_16x16_build_only");
        let band = step_ns(&h, "zipf_hotspot_16x16_sharded4_band") - build;
        let balanced = step_ns(&h, "zipf_hotspot_16x16_sharded4_balanced") - build;
        let speedup = band / balanced;
        println!(
            "{:<22} {:<28} {speedup:>20.1}x",
            "step_mode", "zipf_hotspot_balanced_gain"
        );
        if cores >= 4 {
            assert!(
                speedup >= 1.05,
                "the balanced cut must step the 16x16 hotspot mesh faster than \
                 the naive band cut, got {speedup:.2}x"
            );
        } else {
            println!("(balanced-vs-band gate skipped: {cores} core(s) available, need 4)");
        }
    }

    // The deep-pipeline mesh (the corpus `deep_pipeline.scn` scenario):
    // traffic is in flight almost every cycle, so before the per-layer
    // event horizons this workload ran dense under both modes. The NoC
    // rows skip through 16-stage link crossings and memory service
    // windows; the bridged rows skip through the bridge pipeline's
    // eligible_at / busy_until / respond_at stamps.
    let deep = noc_bench::scenarios::deep_pipeline_spec();
    for (name, backend, mode) in [
        (
            "mesh_deep_pipeline_horizon",
            noc_scenario::Backend::noc(),
            StepMode::Horizon,
        ),
        (
            "mesh_deep_pipeline_dense",
            noc_scenario::Backend::noc(),
            StepMode::Dense,
        ),
        (
            "bridged_deep_pipeline_horizon",
            noc_scenario::Backend::bridged(),
            StepMode::Horizon,
        ),
        (
            "bridged_deep_pipeline_dense",
            noc_scenario::Backend::bridged(),
            StepMode::Dense,
        ),
    ] {
        let spec = &deep;
        h.case("step_mode", name, 500, move || {
            let mut sim = spec.build(&backend).expect("consistent");
            assert!(sim.run_until_with(5_000_000, mode));
            sim.now()
        });
    }

    // Warm-state reuse vs one-shot execution on a prefix-sharing
    // 100-point sweep (6x6 mesh platform, tiny per-point programs —
    // the parameter-study shape `scn serve` exists for). "oneshot"
    // answers each point the way a one-shot `scn` invocation does:
    // a fresh process that parses the point's file, builds the
    // platform and runs it (this binary re-executes itself in the
    // `--oneshot` runner mode below). "warm" hands the whole sweep to
    // the serve executor as one request against a resident checkpoint
    // cache: the file is parsed once and every point forks from the
    // already-built platform. Both sides are single-threaded. The bar —
    // warm turns the same 100 requests around at least twice as fast —
    // is asserted below, not just recorded.
    let serve_sweep = noc_bench::scenarios::serve_sweep(6, 100);
    let serve_dir = std::env::temp_dir().join(format!("noc-serve-bench-{}", std::process::id()));
    std::fs::create_dir_all(&serve_dir).expect("temp dir");
    let point_files: Vec<std::path::PathBuf> = serve_sweep
        .points()
        .iter()
        .enumerate()
        .map(|(k, p)| {
            let path = serve_dir.join(format!("p{k:02}.scn"));
            std::fs::write(&path, p.spec.to_text()).expect("temp point file");
            path
        })
        .collect();
    let exe = std::env::current_exe().expect("self path");
    h.case("serve", "oneshot_scn_100pt_mesh6", 2000, || {
        for file in &point_files {
            let status = std::process::Command::new(&exe)
                .arg("--oneshot")
                .arg(file)
                .stdout(std::process::Stdio::null())
                .status()
                .expect("spawn one-shot runner");
            assert!(status.success());
        }
    });
    let sweep_text = serve_sweep.to_text();
    let serve_cache = std::sync::Mutex::new(noc_serve::CheckpointCache::new(8));
    let serve_config = noc_serve::ServeConfig {
        threads: Some(1),
        ..noc_serve::ServeConfig::default()
    };
    h.case("serve", "warm_serve_100pt_mesh6", 2000, || {
        let request = noc_serve::Request::from_text("bench", "bench.scn", &sweep_text)
            .expect("emitter output");
        let mut records = Vec::new();
        let mut stats = noc_serve::ServeStats::default();
        noc_serve::server::execute_request(
            &request,
            &serve_config,
            &serve_cache,
            &mut records,
            &mut stats,
        )
        .expect("writes to a Vec");
        assert_eq!(stats.points_failed, 0);
        records.len()
    });
    std::fs::remove_dir_all(&serve_dir).ok();
    assert_eq!(
        serve_cache.lock().unwrap().misses(),
        1,
        "the platform must be built exactly once across every warm pass"
    );
    let serve_ns = |h: &Harness, name: &str| {
        h.results
            .iter()
            .find(|r| r.group == "serve" && r.name == name)
            .expect("case just ran")
            .ns_per_iter
    };
    let speedup = serve_ns(&h, "oneshot_scn_100pt_mesh6") / serve_ns(&h, "warm_serve_100pt_mesh6");
    println!("{:<22} {:<28} {speedup:>20.1}x", "serve", "warm_speedup");
    assert!(
        speedup >= 2.0,
        "a warm server must turn the 100-point sweep around at least 2x \
         faster than one-shot runs, got {speedup:.2}x"
    );

    h.case(
        "exp_ordering_policy",
        "id_rename_issue_complete",
        200,
        || {
            let mut p = OrderingPolicy::new(OrderingModel::IdBased { tags: 8 }, 16).unwrap();
            for i in 0..64u16 {
                if let Ok(tag) = p.try_issue(StreamId::new(i % 12), SlvAddr::new(i % 4)) {
                    p.complete(tag).unwrap();
                }
            }
            p.outstanding()
        },
    );

    let req = TransactionRequest::builder(Opcode::Write)
        .address(0x1234)
        .burst(Burst::incr(16, 8).unwrap())
        .source(MstAddr::new(1))
        .destination(SlvAddr::new(2))
        .tag(Tag::new(3))
        .data(vec![0xAB; 128])
        .build()
        .unwrap();
    h.case(
        "exp_services_codec",
        "encode_decode_128B_request",
        200,
        || {
            let pkt = encode_request(black_box(&req));
            decode_request(&pkt).unwrap()
        },
    );

    let mut table = RoutingTable::new(8);
    for d in 0..8 {
        table.set(d, PortId((d % 5) as u8));
    }
    h.case("exp_scale_switch", "switch_5x5_tick_loaded", 200, || {
        let mut sw = Switch::new(SwitchConfig::wormhole(5, 5), table.clone());
        for o in 0..5 {
            sw.set_output_credits(o, 1000);
        }
        for i in 0..5u16 {
            let pkt = Packet::new(Header::request(i % 8, i, 0), vec![0; 32]);
            for f in pkt.to_flits_with_id(8, i as u64) {
                sw.accept(i as usize, f);
            }
        }
        let mut sent = 0;
        for _ in 0..40 {
            sent += sw.tick().sent.len();
        }
        sent
    });

    let pkt = Packet::new(Header::request(1, 2, 3), vec![0xCD; 256]);
    for width in [4usize, 8, 16] {
        h.case(
            "exp_layering_flits",
            &format!("to_flits_256B_w{width}"),
            200,
            || pkt.to_flits(black_box(width)).len(),
        );
    }
    let flits: Vec<Flit> = pkt.to_flits(8);
    h.case("exp_layering_flits", "reassemble_256B_w8", 200, || {
        Packet::from_flits(&flits).unwrap()
    });

    h.write_json();
}
