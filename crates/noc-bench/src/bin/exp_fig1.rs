//! Experiment `exp_fig1` — paper Fig 1: IP blocks with mixed VC sockets
//! plug directly into the NoC through NIUs. Prints per-socket results
//! proving seamless coexistence on one fabric.
//!
//! `--scenario FILE` runs a scenario text file instead of the built-in
//! set-top system (see `tests/scenarios/set_top.scn`).

use noc_scenario::Backend;
use noc_stats::Table;
use noc_workloads::{SetTop, SetTopConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // A loaded scenario runs on the default NoC configuration (like the
    // `scn` runner), so its topology picks its own recommended routing;
    // the built-in set-top spec keeps its tuned configuration.
    let (spec, backend) = match noc_bench::scenario_path_arg()? {
        Some(path) => {
            println!("exp_fig1: scenario file {}", path.display());
            (noc_bench::load_scenario(&path)?, Backend::noc())
        }
        None => {
            println!("exp_fig1: mixed-protocol SoC on the NoC (paper Fig 1)");
            let cfg = SetTopConfig::new(32, 2005);
            (SetTop::new(cfg).spec(), Backend::Noc(cfg.noc))
        }
    };
    let mut sim = spec.build(&backend)?;
    assert!(sim.run_until(5_000_000), "Fig-1 SoC must drain");
    let report = sim.report();
    println!(
        "{} sockets, {} targets\n",
        spec.initiators.len(),
        spec.memories.len()
    );
    let mut t = Table::new(&[
        "master",
        "completions",
        "errors",
        "mean lat (cy)",
        "p95 (cy)",
        "fingerprint",
    ]);
    t.numeric();
    for m in &report.masters {
        t.row(&[
            m.name.clone(),
            m.completions.to_string(),
            m.errors.to_string(),
            format!("{:.1}", m.mean_latency),
            m.latency_percentile(0.95).to_string(),
            format!("{}", m.fingerprint),
        ]);
    }
    println!("{t}");
    println!(
        "total: {} cycles, {:.4} completions/cycle, fabric moved {} flits",
        report.cycles,
        report.throughput(),
        report.fabric.expect("NoC backend").flits_forwarded
    );
    Ok(())
}
