//! Experiment `exp_fig1` — paper Fig 1: IP blocks with mixed VC sockets
//! plug directly into the NoC through NIUs. Prints per-socket results
//! proving seamless coexistence on one fabric.

use noc_stats::Table;
use noc_workloads::{SetTop, SetTopConfig};

fn main() {
    let mut soc = SetTop::new(SetTopConfig::new(32, 2005)).build_noc();
    let report = soc.run(5_000_000);
    assert!(report.all_done, "Fig-1 SoC must drain");
    println!("exp_fig1: mixed-protocol SoC on the NoC (paper Fig 1)");
    println!("7 sockets (AHB/OCP/AXI/STRM/PVCI/BVCI/AVCI), 3 targets, 4-switch fabric\n");
    let mut t = Table::new(&["master", "completions", "errors", "mean lat (cy)", "p95 (cy)", "fingerprint"]);
    t.numeric();
    for m in &report.masters {
        t.row(&[
            m.name.clone(),
            m.completions.to_string(),
            m.errors.to_string(),
            format!("{:.1}", m.mean_latency),
            m.latency_percentile(0.95).to_string(),
            format!("{}", m.fingerprint),
        ]);
    }
    println!("{t}");
    println!(
        "total: {} cycles, {:.4} completions/cycle, fabric moved {} flits",
        report.cycles,
        report.throughput(),
        report.fabric.flits_forwarded
    );
}
