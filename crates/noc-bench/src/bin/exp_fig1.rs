//! Experiment `exp_fig1` — paper Fig 1: IP blocks with mixed VC sockets
//! plug directly into the NoC through NIUs. Prints per-socket results
//! proving seamless coexistence on one fabric.

use noc_scenario::Backend;
use noc_stats::Table;
use noc_workloads::{SetTop, SetTopConfig};

fn main() {
    let cfg = SetTopConfig::new(32, 2005);
    let mut sim = SetTop::new(cfg)
        .spec()
        .build(&Backend::Noc(cfg.noc))
        .expect("set-top spec is consistent");
    assert!(sim.run_until(5_000_000), "Fig-1 SoC must drain");
    let report = sim.report();
    println!("exp_fig1: mixed-protocol SoC on the NoC (paper Fig 1)");
    println!("7 sockets (AHB/OCP/AXI/STRM/PVCI/BVCI/AVCI), 3 targets, 4-switch fabric\n");
    let mut t = Table::new(&[
        "master",
        "completions",
        "errors",
        "mean lat (cy)",
        "p95 (cy)",
        "fingerprint",
    ]);
    t.numeric();
    for m in &report.masters {
        t.row(&[
            m.name.clone(),
            m.completions.to_string(),
            m.errors.to_string(),
            format!("{:.1}", m.mean_latency),
            m.latency_percentile(0.95).to_string(),
            format!("{}", m.fingerprint),
        ]);
    }
    println!("{t}");
    println!(
        "total: {} cycles, {:.4} completions/cycle, fabric moved {} flits",
        report.cycles,
        report.throughput(),
        report.fabric.expect("NoC backend").flits_forwarded
    );
}
