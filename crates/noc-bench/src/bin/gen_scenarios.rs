//! Regenerates the `tests/scenarios/` corpus from the shared experiment
//! scenario builders. The checked-in files are exact emitter output, so
//! `emit(parse(file)) == file` — asserted by `tests/scenario_text.rs`,
//! which makes the corpus double as grammar-stability fixtures. Run this
//! after changing a builder or the text format, then commit the diff.

use noc_bench::scenarios::{
    bursty_storm_spec, clocked_mixed_spec, deep_pipeline_spec, exclusive_sweep, ordering_sweep,
    qos_spec, ring_mixed_spec, scale_sweep, serve_sweep, services_spec, sparse_mesh_32_spec,
    sparse_mesh_spec, trace_replay_spec, trace_replay_trace, zipf_hotspot_mesh16_spec,
    zipf_hotspot_spec,
};
use noc_workloads::{SetTop, SetTopConfig};
use std::path::Path;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let dir = Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/scenarios");
    std::fs::create_dir_all(&dir)?;
    let files: Vec<(&str, String)> = vec![
        (
            "set_top.scn",
            SetTop::new(SetTopConfig::new(32, 2005)).scenario_text(),
        ),
        (
            "layering_settop.scn",
            SetTop::new(SetTopConfig::new(24, 777)).scenario_text(),
        ),
        ("qos_classes.scn", qos_spec([3, 1, 0]).to_text()),
        ("ordering_sweep.scn", ordering_sweep().to_text()),
        ("scale_mesh.scn", scale_sweep(&[2, 3], 24).to_text()),
        ("clocked_mixed.scn", clocked_mixed_spec().to_text()),
        ("ring_mixed.scn", ring_mixed_spec().to_text()),
        ("deep_pipeline.scn", deep_pipeline_spec().to_text()),
        ("services.scn", services_spec().to_text()),
        ("exclusive_locks.scn", exclusive_sweep().to_text()),
        ("serve_sweep.scn", serve_sweep(3, 6).to_text()),
        ("mesh_8x8_sparse.scn", sparse_mesh_spec(8).to_text()),
        ("mesh_16x16_sparse.scn", sparse_mesh_spec(16).to_text()),
        ("mesh_32x32_sparse.scn", sparse_mesh_32_spec().to_text()),
        ("bursty_storm.scn", bursty_storm_spec().to_text()),
        ("zipf_hotspot.scn", zipf_hotspot_spec().to_text()),
        (
            "zipf_hotspot_mesh16.scn",
            zipf_hotspot_mesh16_spec().to_text(),
        ),
        ("trace_replay.scn", trace_replay_spec().to_text()),
        // Companion data, not a scenario: the trace the replay file
        // streams. Written here so the git-porcelain CI check pins it
        // to the generator too.
        ("trace_replay.trace", trace_replay_trace()),
    ];
    for (name, text) in files {
        let path = dir.join(name);
        std::fs::write(&path, &text)?;
        println!("wrote {} ({} lines)", path.display(), text.lines().count());
    }
    Ok(())
}
