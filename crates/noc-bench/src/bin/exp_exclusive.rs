//! Experiment `exp_exclusive` — paper §3: READEX/LOCK impacts the
//! transport layer (path pinning throttles bystanders); AXI/OCP exclusive
//! access costs one packet bit + NIU state and leaves the fabric alone.

use noc_niu::fe::AhbInitiator;
use noc_niu::{InitiatorNiu, InitiatorNiuConfig, MemoryTarget, TargetNiu, TargetNiuConfig};
use noc_protocols::ahb::AhbMaster;
use noc_protocols::{MemoryModel, Program, SocketCommand};
use noc_stats::Table;
use noc_system::{NocConfig, SocBuilder};
use noc_topology::Topology;
use noc_transaction::{AddressMap, MstAddr, Opcode, ServiceBits, ServiceConfig, SlvAddr};
use noc_transport::Header;

const SEM: u64 = 0x40;

fn map() -> AddressMap {
    let mut m = AddressMap::new();
    m.add(0x0, 0x2000, SlvAddr::new(2)).unwrap();
    m
}

fn run(sync: Program) -> (f64, u64) {
    let s = InitiatorNiu::new(
        AhbInitiator::new(AhbMaster::new(sync)),
        InitiatorNiuConfig::new(MstAddr::new(0)),
        map(),
    );
    let bystander: Program = (0..40)
        .map(|i| SocketCommand::read(0x1000 + i * 16, 4))
        .collect();
    let bg = InitiatorNiu::new(
        AhbInitiator::new(AhbMaster::new(bystander)),
        InitiatorNiuConfig::new(MstAddr::new(1)),
        map(),
    );
    let mem = TargetNiu::new(
        MemoryTarget::new(MemoryModel::new(2), 8),
        TargetNiuConfig::new(SlvAddr::new(2)),
    );
    let mut soc = SocBuilder::new(Topology::crossbar(3), NocConfig::new())
        .initiator("sync", 0, Box::new(s))
        .initiator("bystander", 1, Box::new(bg))
        .target("mem", 2, Box::new(mem))
        .build()
        .expect("valid wiring");
    let report = soc.run(2_000_000);
    assert!(report.all_done);
    let lat = report
        .masters
        .iter()
        .find(|m| m.name == "bystander")
        .unwrap()
        .mean_latency;
    (lat, report.fabric.lock_idle_cycles)
}

fn main() {
    println!("exp_exclusive: synchronisation schemes vs bystander latency\n");
    let excl: Program = (0..12)
        .flat_map(|_| {
            vec![
                SocketCommand::read(SEM, 4).with_opcode(Opcode::ReadExclusive),
                SocketCommand::write(SEM, 4, 1).with_opcode(Opcode::WriteExclusive),
            ]
        })
        .collect();
    let lock: Program = (0..12)
        .flat_map(|_| {
            vec![
                SocketCommand::read(SEM, 4).with_opcode(Opcode::ReadLocked),
                SocketCommand::write(SEM, 4, 1)
                    .with_opcode(Opcode::WriteUnlock)
                    .with_delay(40),
            ]
        })
        .collect();
    let mut t = Table::new(&[
        "neighbour scheme",
        "bystander mean (cy)",
        "lock-idle cycles",
    ]);
    t.numeric();
    for (label, program) in [
        ("idle", Vec::new()),
        ("exclusive access", excl),
        ("READEX/LOCK", lock),
    ] {
        let (lat, idle) = run(program);
        t.row(&[label.to_string(), format!("{lat:.1}"), idle.to_string()]);
    }
    println!("{t}");
    let base = ServiceConfig::new();
    let with_excl = ServiceConfig::new().enable(ServiceBits::EXCLUSIVE);
    println!(
        "packet cost of the exclusive service: {} -> {} header bits (+{})",
        Header::wire_bits(base.header_bits()),
        Header::wire_bits(with_excl.header_bits()),
        with_excl.header_bits() - base.header_bits()
    );
}
