//! Experiment `exp_exclusive` — paper §3: READEX/LOCK impacts the
//! transport layer (path pinning throttles bystanders); AXI/OCP exclusive
//! access costs one packet bit + NIU state and leaves the fabric alone.
//!
//! The schemes are declared, not hand-built: each row is a
//! [`ScenarioSpec`](noc_scenario::ScenarioSpec) with a `service`-kind
//! semaphore target (exclusive flag set), compiled through the scenario
//! layer. `--scenario FILE` replays a sweep file (the corpus ships the
//! exact default as `tests/scenarios/exclusive_locks.scn`) instead of
//! the built-in scheme sweep.

use noc_bench::scenarios::exclusive_sweep;
use noc_scenario::Sweep;
use noc_stats::Table;
use noc_transaction::{ServiceBits, ServiceConfig};
use noc_transport::Header;

fn run_sweep(sweep: &Sweep) -> Result<(), Box<dyn std::error::Error>> {
    let results = sweep.run()?;
    let mut t = Table::new(&[
        "neighbour scheme",
        "bystander mean (cy)",
        "lock-idle cycles",
    ]);
    t.numeric();
    for r in &results {
        let bystander = r
            .report
            .master("bystander")
            .map(|m| m.mean_latency)
            .unwrap_or(0.0);
        let lock_idle = r
            .report
            .fabric
            .as_ref()
            .map(|f| f.lock_idle_cycles)
            .unwrap_or(0);
        t.row(&[
            r.label.clone(),
            format!("{bystander:.1}"),
            lock_idle.to_string(),
        ]);
    }
    println!("{t}");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("exp_exclusive: synchronisation schemes vs bystander latency\n");
    let sweep = match noc_bench::scenario_path_arg()? {
        Some(path) => {
            println!("scheme sweep from {}\n", path.display());
            noc_bench::load_sweep(&path)?
        }
        None => exclusive_sweep(),
    };
    run_sweep(&sweep)?;
    let base = ServiceConfig::new();
    let with_excl = ServiceConfig::new().enable(ServiceBits::EXCLUSIVE);
    println!(
        "packet cost of the exclusive service: {} -> {} header bits (+{})",
        Header::wire_bits(base.header_bits()),
        Header::wire_bits(with_excl.header_bits()),
        with_excl.header_bits() - base.header_bits()
    );
    Ok(())
}
