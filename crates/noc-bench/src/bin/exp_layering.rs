//! Experiment `exp_layering` — paper §1: transport and physical choices
//! (switching mode, flit width, pipelining) are invisible at the
//! transaction layer. Identical fingerprints, different timing.
//!
//! One set-top spec, one sweep over transport/physical configurations.
//! `--scenario FILE` substitutes a scenario text file for the base spec;
//! the transport/physical configuration axis stays in code (backend
//! configurations are not part of the text format).

use noc_physical::LinkConfig;
use noc_scenario::{Backend, Sweep};
use noc_stats::Table;
use noc_system::NocConfig;
use noc_topology::RouteAlgorithm;
use noc_transport::SwitchMode;
use noc_workloads::{SetTop, SetTopConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("exp_layering: transport/physical sweep over the Fig-1 SoC\n");
    let configs: Vec<(&str, NocConfig)> = vec![
        (
            "wormhole, full width",
            NocConfig::new().with_routing(RouteAlgorithm::UpDown),
        ),
        (
            "store-and-forward",
            NocConfig::new()
                .with_routing(RouteAlgorithm::UpDown)
                .with_mode(SwitchMode::StoreAndForward)
                .with_buffer_depth(40),
        ),
        (
            "wormhole, half-width links",
            NocConfig::new()
                .with_routing(RouteAlgorithm::UpDown)
                .with_link(LinkConfig::new().with_phits_per_flit(2)),
        ),
        (
            "wormhole, 3-stage pipelined links",
            NocConfig::new()
                .with_routing(RouteAlgorithm::UpDown)
                .with_link(LinkConfig::new().with_pipeline(3)),
        ),
        (
            "wormhole, deep buffers (32)",
            NocConfig::new()
                .with_routing(RouteAlgorithm::UpDown)
                .with_buffer_depth(32),
        ),
    ];
    let spec = match noc_bench::scenario_path_arg()? {
        Some(path) => {
            println!("base scenario: {}\n", path.display());
            noc_bench::load_scenario(&path)?
        }
        None => SetTop::new(SetTopConfig::new(24, 777)).spec(),
    };
    let sweep = Sweep::over(configs, |(label, noc)| {
        (label.to_string(), spec.clone(), Backend::Noc(noc))
    });

    let mut t = Table::new(&[
        "transport/physical config",
        "makespan (cy)",
        "mean lat (cy)",
        "system fingerprint",
    ]);
    t.numeric();
    let mut fingerprints = Vec::new();
    for result in sweep.run()? {
        let fp = result.report.system_fingerprint();
        t.row(&[
            result.label,
            result.report.cycles.to_string(),
            format!("{:.1}", result.report.mean_latency()),
            format!("{fp}"),
        ]);
        fingerprints.push(fp);
    }
    println!("{t}");
    // NOTE: the set-top workload has cross-master races on shared memory,
    // so fingerprints are only guaranteed equal for race-free workloads
    // (asserted in tests/layering_invariance.rs). Report both facts:
    let all_equal = fingerprints.windows(2).all(|w| w[0] == w[1]);
    println!(
        "fingerprints identical across configs: {all_equal} \
         (guaranteed for race-free workloads; see layering_invariance tests)"
    );
    Ok(())
}
