//! Experiment `exp_scale` — transport-layer scalability: mesh size sweep
//! under uniform random traffic (the property the paper assigns to the
//! transport layer, which the transaction layer never sees).
//!
//! Each mesh size is one declarative scenario; the sweep runner expands
//! the grid and batches the runs. `--scenario FILE` loads the sweep from
//! a scenario text file instead (see `tests/scenarios/scale_mesh.scn`).

use noc_bench::scenarios::scale_sweep;
use noc_stats::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    const COMMANDS: usize = 24;
    let sweep = match noc_bench::scenario_path_arg()? {
        Some(path) => {
            println!("exp_scale: sweep file {}\n", path.display());
            noc_bench::load_sweep(&path)?
        }
        None => {
            println!(
                "exp_scale: mesh sweep, uniform random AXI traffic, {COMMANDS} reads/master\n"
            );
            scale_sweep(&[2, 3, 4, 6], COMMANDS)
        }
    };
    let masters_per_point: Vec<usize> = sweep
        .points()
        .iter()
        .map(|p| p.spec.initiators.len())
        .collect();

    let mut t = Table::new(&[
        "mesh",
        "masters",
        "makespan (cy)",
        "mean lat (cy)",
        "aggregate reads/cy",
    ]);
    t.numeric();
    for (result, masters) in sweep.run()?.iter().zip(masters_per_point) {
        let r = &result.report;
        t.row(&[
            result.label.clone(),
            masters.to_string(),
            r.cycles.to_string(),
            format!("{:.1}", r.mean_latency()),
            format!("{:.4}", r.throughput()),
        ]);
    }
    println!("{t}");
    println!(
        "aggregate throughput grows with fabric size: transport scales, transactions unchanged"
    );
    Ok(())
}
