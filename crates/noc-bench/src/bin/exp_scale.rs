//! Experiment `exp_scale` — transport-layer scalability: mesh size sweep
//! under uniform random traffic (the property the paper assigns to the
//! transport layer, which the transaction layer never sees).

use noc_niu::fe::AxiInitiator;
use noc_niu::{InitiatorNiu, InitiatorNiuConfig, MemoryTarget, TargetNiu, TargetNiuConfig};
use noc_protocols::axi::AxiMaster;
use noc_protocols::{MemoryModel, Program, SocketCommand};
use noc_stats::Table;
use noc_system::{NocConfig, SocBuilder};
use noc_topology::{RouteAlgorithm, Topology};
use noc_transaction::{AddressMap, MstAddr, OrderingModel, SlvAddr, StreamId};

/// Builds a w x w mesh: even nodes are masters, odd nodes memories.
fn run_mesh(w: usize, commands: usize) -> (u64, f64, usize) {
    let n = w * w;
    let slice = 0x1_0000u64;
    let mut map = AddressMap::new();
    let targets: Vec<u16> = (0..n as u16).filter(|i| i % 2 == 1).collect();
    for (k, t) in targets.iter().enumerate() {
        map.add(k as u64 * slice, (k as u64 + 1) * slice, SlvAddr::new(*t)).unwrap();
    }
    let mut builder = SocBuilder::new(
        Topology::mesh(w, w),
        NocConfig::new().with_routing(RouteAlgorithm::XyMesh { width: w, height: w }),
    );
    let mut masters = 0;
    for node in 0..n as u16 {
        if node % 2 == 1 {
            let tgt = TargetNiu::new(
                MemoryTarget::new(MemoryModel::new(2), 8),
                TargetNiuConfig::new(SlvAddr::new(node)),
            );
            builder = builder.target(&format!("mem{node}"), node, Box::new(tgt));
        } else {
            masters += 1;
            // uniform random reads over all slices, seeded per node
            let program: Program = (0..commands)
                .map(|i| {
                    let mut x = (node as u64) << 32 | i as u64;
                    x ^= x >> 12; x = x.wrapping_mul(0x2545F4914F6CDD1D); x ^= x >> 27;
                    let slice_idx = x % targets.len() as u64;
                    let addr = slice_idx * slice + (x >> 8) % (slice - 64);
                    SocketCommand::read(addr & !7, 8).with_stream(StreamId::new(i as u16 % 4))
                })
                .collect();
            let niu = InitiatorNiu::new(
                AxiInitiator::new(AxiMaster::new(program, 4, 8)),
                InitiatorNiuConfig::new(MstAddr::new(node))
                    .with_ordering(OrderingModel::IdBased { tags: 4 })
                    .with_outstanding(8),
                map.clone(),
            );
            builder = builder.initiator(&format!("m{node}"), node, Box::new(niu));
        }
    }
    let mut soc = builder.build().expect("valid wiring");
    let report = soc.run(20_000_000);
    assert!(report.all_done, "mesh {w}x{w} must drain");
    (report.cycles, report.mean_latency(), masters)
}

fn main() {
    println!("exp_scale: mesh sweep, uniform random AXI traffic, 24 reads/master\n");
    let mut t = Table::new(&["mesh", "masters", "makespan (cy)", "mean lat (cy)", "aggregate reads/cy"]);
    t.numeric();
    for w in [2usize, 3, 4, 6] {
        let (cycles, lat, masters) = run_mesh(w, 24);
        t.row(&[
            format!("{w}x{w}"),
            masters.to_string(),
            cycles.to_string(),
            format!("{lat:.1}"),
            format!("{:.4}", (masters * 24) as f64 / cycles as f64),
        ]);
    }
    println!("{t}");
    println!("aggregate throughput grows with fabric size: transport scales, transactions unchanged");
}
