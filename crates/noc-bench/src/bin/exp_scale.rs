//! Experiment `exp_scale` — transport-layer scalability: mesh size sweep
//! under uniform random traffic (the property the paper assigns to the
//! transport layer, which the transaction layer never sees).
//!
//! Each mesh size is one declarative scenario; the sweep runner expands
//! the grid and batches the runs.

use noc_protocols::{Program, SocketCommand};
use noc_scenario::{
    Backend, InitiatorSpec, MemorySpec, ScenarioSpec, SocketSpec, Sweep, TopologySpec,
};
use noc_stats::Table;
use noc_system::NocConfig;
use noc_topology::RouteAlgorithm;
use noc_transaction::StreamId;

const SLICE: u64 = 0x1_0000;

/// A w x w mesh: masters on even switches, memories on odd switches,
/// uniform random reads over all memory slices.
fn mesh_spec(w: usize, commands: usize) -> ScenarioSpec {
    let n = w * w;
    let masters: Vec<usize> = (0..n).filter(|s| s % 2 == 0).collect();
    let memories: Vec<usize> = (0..n).filter(|s| s % 2 == 1).collect();
    let mut spec = ScenarioSpec::new();
    for &switch in &masters {
        // uniform random reads over all slices, seeded per master switch
        let program: Program = (0..commands)
            .map(|i| {
                let mut x = (switch as u64) << 32 | i as u64;
                x ^= x >> 12;
                x = x.wrapping_mul(0x2545F4914F6CDD1D);
                x ^= x >> 27;
                let slice_idx = x % memories.len() as u64;
                let addr = slice_idx * SLICE + (x >> 8) % (SLICE - 64);
                SocketCommand::read(addr & !7, 8).with_stream(StreamId::new(i as u16 % 4))
            })
            .collect();
        spec = spec.initiator(
            InitiatorSpec::new(
                &format!("m{switch}"),
                SocketSpec::Axi {
                    tags: 4,
                    per_id: 4,
                    total: 8,
                },
                program,
            )
            .with_outstanding(8),
        );
    }
    for (k, &switch) in memories.iter().enumerate() {
        spec = spec.memory(
            MemorySpec::new(
                &format!("mem{switch}"),
                k as u64 * SLICE,
                (k as u64 + 1) * SLICE,
                2,
            )
            .with_queue(8),
        );
    }
    // Row-major mesh links; masters first then memories, each on its own
    // switch, so XY routing stays deadlock-free.
    let placement: Vec<usize> = masters.iter().chain(memories.iter()).copied().collect();
    let links = mesh_links(w, w);
    spec.with_topology(TopologySpec::Custom {
        switches: n,
        links,
        placement,
    })
}

fn mesh_links(width: usize, height: usize) -> Vec<(usize, usize)> {
    let mut links = Vec::new();
    for y in 0..height {
        for x in 0..width {
            let s = y * width + x;
            if x + 1 < width {
                links.push((s, s + 1));
            }
            if y + 1 < height {
                links.push((s, s + width));
            }
        }
    }
    links
}

fn main() {
    const COMMANDS: usize = 24;
    println!("exp_scale: mesh sweep, uniform random AXI traffic, {COMMANDS} reads/master\n");
    let sweep = Sweep::over([2usize, 3, 4, 6], |w| {
        (
            format!("{w}x{w}"),
            mesh_spec(w, COMMANDS),
            Backend::Noc(NocConfig::new().with_routing(RouteAlgorithm::XyMesh {
                width: w,
                height: w,
            })),
        )
    })
    .with_max_cycles(20_000_000);
    let masters_per_point: Vec<usize> = sweep
        .points()
        .iter()
        .map(|p| p.spec.initiators.len())
        .collect();

    let mut t = Table::new(&[
        "mesh",
        "masters",
        "makespan (cy)",
        "mean lat (cy)",
        "aggregate reads/cy",
    ]);
    t.numeric();
    for (result, masters) in sweep
        .run()
        .expect("mesh specs are consistent")
        .iter()
        .zip(masters_per_point)
    {
        let r = &result.report;
        t.row(&[
            result.label.clone(),
            masters.to_string(),
            r.cycles.to_string(),
            format!("{:.1}", r.mean_latency()),
            format!("{:.4}", r.throughput()),
        ]);
    }
    println!("{t}");
    println!(
        "aggregate throughput grows with fabric size: transport scales, transactions unchanged"
    );
}
