//! Experiment `exp_fig2` — paper Fig 2: the same SoC forced through a
//! reference-socket interconnect with per-IP bridges, and through a
//! shared bus. Quantifies the bridge latency/area/feature penalties.
//!
//! All three realisations compile from the one set-top `ScenarioSpec`;
//! per-master rows are looked up by name, never by log position.

use noc_area::{bridge_gates, niu_gates, NiuAreaConfig};
use noc_protocols::ProtocolKind;
use noc_scenario::{Backend, ScenarioReport, Simulation};
use noc_stats::Table;
use noc_workloads::{SetTop, SetTopConfig};

fn main() {
    let cfg = SetTopConfig::new(32, 2005);
    let spec = SetTop::new(cfg).spec();

    let run = |backend: Backend, budget: u64| -> ScenarioReport {
        let mut sim = spec.build(&backend).expect("set-top spec is consistent");
        assert!(sim.run_until(budget), "{backend} must drain");
        sim.report()
    };
    let noc_report = run(Backend::Noc(cfg.noc), 5_000_000);
    let mut bridged = spec
        .build_bridged(cfg.bridge)
        .expect("set-top spec is consistent");
    assert!(bridged.run_until(10_000_000));
    let bridged_report = bridged.report();
    let bus_report = run(Backend::Bus(cfg.bus), 10_000_000);

    println!("exp_fig2: Fig 1 (NoC+NIUs) vs Fig 2 (bridged) vs shared bus\n");
    let mut t = Table::new(&[
        "interconnect",
        "makespan (cy)",
        "mean lat (cy)",
        "dma mean (cy)",
        "video mean (cy)",
    ]);
    t.numeric();
    let rows = [
        ("NoC + NIUs (Fig 1)", &noc_report),
        ("bridged ref-socket (Fig 2)", &bridged_report),
        ("shared bus", &bus_report),
    ];
    for (label, report) in rows {
        let by_name = |tag: &str| report.master(tag).expect("set-top master").mean_latency;
        t.row(&[
            label.into(),
            report.cycles.to_string(),
            format!("{:.1}", report.mean_latency()),
            format!("{:.1}", by_name("dma")),
            format!("{:.1}", by_name("video")),
        ]);
    }
    println!("{t}");
    println!(
        "bridged interconnect chopped {} long bursts (feature loss)\n",
        bridged.inner().chopped_bursts()
    );

    println!("per-socket adaptation area (NIU vs bridge to reference socket):");
    let mut a = Table::new(&["socket", "NIU gates", "bridge gates", "bridge overhead"]);
    a.numeric();
    let mix = [
        (ProtocolKind::Ahb, 2u32),
        (ProtocolKind::Ocp, 8),
        (ProtocolKind::Axi, 8),
        (ProtocolKind::Strm, 2),
        (ProtocolKind::Pvci, 1),
        (ProtocolKind::Bvci, 2),
        (ProtocolKind::Avci, 4),
    ];
    for (p, out) in mix {
        let n = niu_gates(&NiuAreaConfig::new(p, out)).total();
        let b = bridge_gates(p, ProtocolKind::Bvci, 8, 4).total();
        a.row(&[
            p.to_string(),
            n.to_string(),
            b.to_string(),
            format!("{:.2}x", b as f64 / n as f64),
        ]);
    }
    println!("{a}");
}
