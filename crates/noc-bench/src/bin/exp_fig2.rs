//! Experiment `exp_fig2` — paper Fig 2: the same SoC forced through a
//! reference-socket interconnect with per-IP bridges, and through a
//! shared bus. Quantifies the bridge latency/area/feature penalties.

use noc_area::{bridge_gates, niu_gates, NiuAreaConfig};
use noc_baseline::Interconnect;
use noc_bench::mean_latency;
use noc_protocols::ProtocolKind;
use noc_stats::Table;
use noc_workloads::{SetTop, SetTopConfig};

fn main() {
    let cfg = SetTopConfig::new(32, 2005);
    let noc_report = SetTop::new(cfg).build_noc().run(5_000_000);
    assert!(noc_report.all_done);
    let mut bridged = SetTop::new(cfg).build_bridged();
    assert!(bridged.run(10_000_000));
    let mut bus = SetTop::new(cfg).build_bus();
    assert!(bus.run(10_000_000));

    println!("exp_fig2: Fig 1 (NoC+NIUs) vs Fig 2 (bridged) vs shared bus\n");
    let mut t = Table::new(&["interconnect", "makespan (cy)", "mean lat (cy)", "dma mean (cy)", "video mean (cy)"]);
    t.numeric();
    let noc_m = |tag: &str| noc_report.masters.iter().find(|m| m.name.contains(tag)).unwrap().mean_latency;
    t.row(&[
        "NoC + NIUs (Fig 1)".into(),
        noc_report.cycles.to_string(),
        format!("{:.1}", noc_report.mean_latency()),
        format!("{:.1}", noc_m("dma")),
        format!("{:.1}", noc_m("video")),
    ]);
    let blogs = bridged.logs();
    t.row(&[
        "bridged ref-socket (Fig 2)".into(),
        bridged.now().to_string(),
        format!("{:.1}", mean_latency(&blogs)),
        format!("{:.1}", blogs[2].mean_latency()),
        format!("{:.1}", blogs[1].mean_latency()),
    ]);
    let buslogs = bus.logs();
    t.row(&[
        "shared bus".into(),
        bus.now().to_string(),
        format!("{:.1}", mean_latency(&buslogs)),
        format!("{:.1}", buslogs[2].mean_latency()),
        format!("{:.1}", buslogs[1].mean_latency()),
    ]);
    println!("{t}");
    println!("bridged interconnect chopped {} long bursts (feature loss)\n", bridged.chopped_bursts());

    println!("per-socket adaptation area (NIU vs bridge to reference socket):");
    let mut a = Table::new(&["socket", "NIU gates", "bridge gates", "bridge overhead"]);
    a.numeric();
    let mix = [
        (ProtocolKind::Ahb, 2u32), (ProtocolKind::Ocp, 8), (ProtocolKind::Axi, 8),
        (ProtocolKind::Strm, 2), (ProtocolKind::Pvci, 1), (ProtocolKind::Bvci, 2),
        (ProtocolKind::Avci, 4),
    ];
    for (p, out) in mix {
        let n = niu_gates(&NiuAreaConfig::new(p, out)).total();
        let b = bridge_gates(p, ProtocolKind::Bvci, 8, 4).total();
        a.row(&[p.to_string(), n.to_string(), b.to_string(), format!("{:.2}x", b as f64 / n as f64)]);
    }
    println!("{a}");
}
