//! Experiment `exp_fig2` — paper Fig 2: the same SoC forced through a
//! reference-socket interconnect with per-IP bridges, and through a
//! shared bus. Quantifies the bridge latency/area/feature penalties.
//!
//! All three realisations compile from the one set-top `ScenarioSpec`;
//! per-master rows are looked up by name, never by log position.
//! `--scenario FILE` substitutes a scenario text file for the set-top
//! spec (the latency table then reports the two highest-traffic masters
//! it finds by name, falling back to the first two).

use noc_area::{bridge_gates, niu_gates, NiuAreaConfig};
use noc_protocols::ProtocolKind;
use noc_scenario::{Backend, ScenarioReport, Simulation};
use noc_stats::Table;
use noc_workloads::{SetTop, SetTopConfig};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let cfg = SetTopConfig::new(32, 2005);
    // A loaded scenario runs on default backend configurations (like the
    // `scn` runner), so its topology picks its own recommended routing;
    // the built-in set-top spec keeps its tuned configurations.
    let (spec, noc_backend) = match noc_bench::scenario_path_arg()? {
        Some(path) => {
            println!("exp_fig2: scenario file {}", path.display());
            (noc_bench::load_scenario(&path)?, Backend::noc())
        }
        None => (SetTop::new(cfg).spec(), Backend::Noc(cfg.noc)),
    };

    let run =
        |backend: Backend, budget: u64| -> Result<ScenarioReport, Box<dyn std::error::Error>> {
            let mut sim = spec.build(&backend)?;
            assert!(sim.run_until(budget), "{backend} must drain");
            Ok(sim.report())
        };
    let noc_report = run(noc_backend, 5_000_000)?;
    let mut bridged = spec.build_bridged(cfg.bridge)?;
    assert!(bridged.run_until(10_000_000));
    let bridged_report = bridged.report();
    let bus_report = run(Backend::Bus(cfg.bus), 10_000_000)?;

    // Two named columns: the set-top's dma/video when present, else the
    // first two declared masters.
    let col = |tag: &str, fallback: usize| -> String {
        noc_report
            .master(tag)
            .map(|m| m.name.clone())
            .or_else(|| noc_report.masters.get(fallback).map(|m| m.name.clone()))
            .unwrap_or_default()
    };
    let col_a = col("dma", 0);
    let col_b = col("video", 1.min(noc_report.masters.len().saturating_sub(1)));

    println!("exp_fig2: Fig 1 (NoC+NIUs) vs Fig 2 (bridged) vs shared bus\n");
    let mut t = Table::new(&[
        "interconnect",
        "makespan (cy)",
        "mean lat (cy)",
        &format!("{col_a} mean (cy)"),
        &format!("{col_b} mean (cy)"),
    ]);
    t.numeric();
    let rows = [
        ("NoC + NIUs (Fig 1)", &noc_report),
        ("bridged ref-socket (Fig 2)", &bridged_report),
        ("shared bus", &bus_report),
    ];
    for (label, report) in rows {
        let by_name = |name: &str| report.master(name).map_or(0.0, |m| m.mean_latency);
        t.row(&[
            label.into(),
            report.cycles.to_string(),
            format!("{:.1}", report.mean_latency()),
            format!("{:.1}", by_name(&col_a)),
            format!("{:.1}", by_name(&col_b)),
        ]);
    }
    println!("{t}");
    println!(
        "bridged interconnect chopped {} long bursts (feature loss)\n",
        bridged.inner().chopped_bursts()
    );

    println!("per-socket adaptation area (NIU vs bridge to reference socket):");
    let mut a = Table::new(&["socket", "NIU gates", "bridge gates", "bridge overhead"]);
    a.numeric();
    let mix = [
        (ProtocolKind::Ahb, 2u32),
        (ProtocolKind::Ocp, 8),
        (ProtocolKind::Axi, 8),
        (ProtocolKind::Strm, 2),
        (ProtocolKind::Pvci, 1),
        (ProtocolKind::Bvci, 2),
        (ProtocolKind::Avci, 4),
    ];
    for (p, out) in mix {
        let n = niu_gates(&NiuAreaConfig::new(p, out)).total();
        let b = bridge_gates(p, ProtocolKind::Bvci, 8, 4).total();
        a.row(&[
            p.to_string(),
            n.to_string(),
            b.to_string(),
            format!("{:.2}x", b as f64 / n as f64),
        ]);
    }
    println!("{a}");
    Ok(())
}
