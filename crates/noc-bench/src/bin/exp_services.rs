//! Experiment `exp_services` — paper §2: adding a socket-specific feature
//! costs NIU state and packet bits; switches are untouched.

use noc_area::{niu_gates, switch_gates, NiuAreaConfig};
use noc_protocols::ProtocolKind;
use noc_stats::Table;
use noc_transaction::{ServiceBits, ServiceConfig};
use noc_transport::Header;

fn main() {
    println!("exp_services: cost of activating optional NoC services\n");
    let mut t = Table::new(&[
        "configuration",
        "header bits",
        "NIU gates (AXI,8)",
        "switch gates (5x5)",
    ]);
    t.numeric();
    let switch = switch_gates(5, 5, 72, 8).total(); // constant on purpose
    let steps: Vec<(&str, ServiceConfig)> = vec![
        ("no services", ServiceConfig::new()),
        (
            "+ exclusive",
            ServiceConfig::new().enable(ServiceBits::EXCLUSIVE),
        ),
        (
            "+ exclusive + secure",
            ServiceConfig::new()
                .enable(ServiceBits::EXCLUSIVE)
                .enable(ServiceBits::SECURE),
        ),
        (
            "+ exclusive + secure + user0/1",
            ServiceConfig::new()
                .enable(ServiceBits::EXCLUSIVE)
                .enable(ServiceBits::SECURE)
                .enable(ServiceBits::USER0)
                .enable(ServiceBits::USER1),
        ),
    ];
    for (label, cfg) in steps {
        let niu = niu_gates(
            &NiuAreaConfig::new(ProtocolKind::Axi, 8).with_service_bits(cfg.header_bits()),
        );
        t.row(&[
            label.to_string(),
            Header::wire_bits(cfg.header_bits()).to_string(),
            niu.total().to_string(),
            switch.to_string(),
        ]);
    }
    println!("{t}");
    println!("switch area is constant: services never touch transport logic (paper §2)");
}
