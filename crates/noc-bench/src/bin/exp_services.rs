//! Experiment `exp_services` — paper §2: adding a socket-specific feature
//! costs NIU state and packet bits; switches are untouched. The second
//! half runs the declarative target-socket scenario: one spec with a
//! memory, an AXI slave IP and a register/service block compiles to all
//! three interconnects through the scenario layer.
//!
//! `--scenario FILE` replays a scenario text file (the corpus ships the
//! default as `tests/scenarios/services.scn`) instead of the built-in
//! spec.

use noc_area::{niu_gates, switch_gates, NiuAreaConfig};
use noc_bench::scenarios::services_spec;
use noc_protocols::ProtocolKind;
use noc_scenario::{Backend, ScenarioError, ScenarioSpec};
use noc_stats::Table;
use noc_transaction::{ServiceBits, ServiceConfig};
use noc_transport::Header;

fn area_table() {
    let mut t = Table::new(&[
        "configuration",
        "header bits",
        "NIU gates (AXI,8)",
        "switch gates (5x5)",
    ]);
    t.numeric();
    let switch = switch_gates(5, 5, 72, 8).total(); // constant on purpose
    let steps: Vec<(&str, ServiceConfig)> = vec![
        ("no services", ServiceConfig::new()),
        (
            "+ exclusive",
            ServiceConfig::new().enable(ServiceBits::EXCLUSIVE),
        ),
        (
            "+ exclusive + secure",
            ServiceConfig::new()
                .enable(ServiceBits::EXCLUSIVE)
                .enable(ServiceBits::SECURE),
        ),
        (
            "+ exclusive + secure + user0/1",
            ServiceConfig::new()
                .enable(ServiceBits::EXCLUSIVE)
                .enable(ServiceBits::SECURE)
                .enable(ServiceBits::USER0)
                .enable(ServiceBits::USER1),
        ),
    ];
    for (label, cfg) in steps {
        let niu = niu_gates(
            &NiuAreaConfig::new(ProtocolKind::Axi, 8).with_service_bits(cfg.header_bits()),
        );
        t.row(&[
            label.to_string(),
            Header::wire_bits(cfg.header_bits()).to_string(),
            niu.total().to_string(),
            switch.to_string(),
        ]);
    }
    println!("{t}");
    println!("switch area is constant: services never touch transport logic (paper §2)\n");
}

fn target_table(spec: &ScenarioSpec) -> Result<(), Box<dyn std::error::Error>> {
    let targets: Vec<String> = spec
        .memories
        .iter()
        .map(|m| format!("{}({})", m.name, m.target))
        .collect();
    println!(
        "target sockets: {} — one spec, every interconnect",
        targets.join(", ")
    );
    let mut t = Table::new(&["backend", "cycles", "completions", "mean lat (cy)"]);
    t.numeric();
    for backend in [Backend::noc(), Backend::bridged(), Backend::bus()] {
        let mut sim = match spec.build(&backend) {
            Ok(sim) => sim,
            Err(
                e @ (ScenarioError::UnsupportedClock { .. }
                | ScenarioError::UnsupportedTarget { .. }),
            ) => {
                println!("  {backend}: skipped ({e})");
                continue;
            }
            Err(e) => return Err(e.into()),
        };
        assert!(sim.run_until(2_000_000), "{backend} must drain");
        let report = sim.report();
        t.row(&[
            backend.label().to_owned(),
            report.cycles.to_string(),
            report.total_completions().to_string(),
            format!("{:.1}", report.mean_latency()),
        ]);
    }
    println!("{t}");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    println!("exp_services: cost of activating optional NoC services\n");
    area_table();
    let spec = match noc_bench::scenario_path_arg()? {
        Some(path) => {
            println!("target scenario from {}", path.display());
            noc_bench::load_scenario(&path)?
        }
        None => services_spec(),
    };
    target_table(&spec)
}
