//! Experiment `exp_ordering` — paper §3: one tag mechanism absorbs three
//! socket ordering models, and outstanding capacity trades gates for
//! cycles ("scaling their gate count to their expected performance").
//!
//! `--scenario FILE` loads the sweep from a scenario text file (see
//! `tests/scenarios/ordering_sweep.scn`); gate columns are computed when
//! a point's label parses as its outstanding budget.

use noc_area::{niu_gates, NiuAreaConfig};
use noc_bench::scenarios::ordering_sweep;
use noc_protocols::ProtocolKind;
use noc_stats::Table;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let sweep = match noc_bench::scenario_path_arg()? {
        Some(path) => {
            println!("exp_ordering: sweep file {}\n", path.display());
            noc_bench::load_sweep(&path)?
        }
        None => {
            println!("exp_ordering: outstanding-capacity sweep (AXI master, fast+slow targets)\n");
            ordering_sweep()
        }
    };
    let results = sweep.run()?;

    let mut t = Table::new(&[
        "outstanding",
        "makespan (cy)",
        "speedup",
        "NIU gates",
        "gates vs 1",
    ]);
    t.numeric();
    let base_cycles = results.first().map_or(0, |r| r.report.cycles);
    let base_gates = niu_gates(&NiuAreaConfig::new(ProtocolKind::Axi, 1)).total();
    for result in &results {
        let cycles = result.report.cycles;
        let gates = result.label.parse::<u32>().ok().map(|outstanding| {
            niu_gates(&NiuAreaConfig::new(ProtocolKind::Axi, outstanding)).total()
        });
        t.row(&[
            result.label.clone(),
            cycles.to_string(),
            format!("{:.2}x", base_cycles as f64 / cycles as f64),
            gates.map_or_else(|| "-".into(), |g| g.to_string()),
            gates.map_or_else(
                || "-".into(),
                |g| format!("{:.2}x", g as f64 / base_gates as f64),
            ),
        ]);
    }
    println!("{t}");
    println!("more outstanding transactions -> fewer cycles, more gates (paper §3)");
    Ok(())
}
