//! Experiment `exp_ordering` — paper §3: one tag mechanism absorbs three
//! socket ordering models, and outstanding capacity trades gates for
//! cycles ("scaling their gate count to their expected performance").

use noc_area::{niu_gates, NiuAreaConfig};
use noc_niu::fe::AxiInitiator;
use noc_niu::{InitiatorNiu, InitiatorNiuConfig, MemoryTarget, TargetNiu, TargetNiuConfig};
use noc_protocols::axi::AxiMaster;
use noc_protocols::{MemoryModel, Program, ProtocolKind, SocketCommand};
use noc_stats::Table;
use noc_system::{NocConfig, SocBuilder};
use noc_topology::Topology;
use noc_transaction::{AddressMap, MstAddr, OrderingModel, SlvAddr, StreamId};

fn workload(n: usize) -> Program {
    (0..n)
        .map(|i| {
            let addr = if i % 2 == 0 { 0x1000 } else { 0x0 } + (i as u64 * 4) % 0x800;
            SocketCommand::read(addr, 4).with_stream(StreamId::new(i as u16 % 4))
        })
        .collect()
}

fn run(outstanding: u32) -> u64 {
    let mut map = AddressMap::new();
    map.add(0x0, 0x1000, SlvAddr::new(1)).unwrap();
    map.add(0x1000, 0x2000, SlvAddr::new(2)).unwrap();
    let niu = InitiatorNiu::new(
        AxiInitiator::new(AxiMaster::new(workload(48), outstanding, outstanding)),
        InitiatorNiuConfig::new(MstAddr::new(0))
            .with_ordering(OrderingModel::IdBased { tags: 4 })
            .with_outstanding(outstanding),
        map,
    );
    let fast = TargetNiu::new(MemoryTarget::new(MemoryModel::new(1), 8), TargetNiuConfig::new(SlvAddr::new(1)));
    let slow = TargetNiu::new(MemoryTarget::new(MemoryModel::new(30), 8), TargetNiuConfig::new(SlvAddr::new(2)));
    let mut soc = SocBuilder::new(Topology::crossbar(3), NocConfig::new())
        .initiator("axi", 0, Box::new(niu))
        .target("fast", 1, Box::new(fast))
        .target("slow", 2, Box::new(slow))
        .build()
        .expect("valid wiring");
    let report = soc.run(2_000_000);
    assert!(report.all_done);
    report.cycles
}

fn main() {
    println!("exp_ordering: outstanding-capacity sweep (AXI master, fast+slow targets)\n");
    let mut t = Table::new(&["outstanding", "makespan (cy)", "speedup", "NIU gates", "gates vs 1"]);
    t.numeric();
    let base_cycles = run(1);
    let base_gates = niu_gates(&NiuAreaConfig::new(ProtocolKind::Axi, 1)).total();
    for outstanding in [1u32, 2, 4, 8, 16] {
        let cycles = run(outstanding);
        let gates = niu_gates(&NiuAreaConfig::new(ProtocolKind::Axi, outstanding)).total();
        t.row(&[
            outstanding.to_string(),
            cycles.to_string(),
            format!("{:.2}x", base_cycles as f64 / cycles as f64),
            gates.to_string(),
            format!("{:.2}x", gates as f64 / base_gates as f64),
        ]);
    }
    println!("{t}");
    println!("more outstanding transactions -> fewer cycles, more gates (paper §3)");
}
