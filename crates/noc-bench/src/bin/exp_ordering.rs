//! Experiment `exp_ordering` — paper §3: one tag mechanism absorbs three
//! socket ordering models, and outstanding capacity trades gates for
//! cycles ("scaling their gate count to their expected performance").

use noc_area::{niu_gates, NiuAreaConfig};
use noc_protocols::{Program, ProtocolKind, SocketCommand};
use noc_scenario::{Backend, InitiatorSpec, MemorySpec, ScenarioSpec, SocketSpec, Sweep};
use noc_stats::Table;
use noc_transaction::StreamId;

fn workload(n: usize) -> Program {
    (0..n)
        .map(|i| {
            let addr = if i % 2 == 0 { 0x1000 } else { 0x0 } + (i as u64 * 4) % 0x800;
            SocketCommand::read(addr, 4).with_stream(StreamId::new(i as u16 % 4))
        })
        .collect()
}

fn spec(outstanding: u32) -> ScenarioSpec {
    ScenarioSpec::new()
        .initiator(
            InitiatorSpec::new(
                "axi",
                SocketSpec::Axi {
                    tags: 4,
                    per_id: outstanding,
                    total: outstanding,
                },
                workload(48),
            )
            .with_outstanding(outstanding),
        )
        .memory(MemorySpec::new("fast", 0x0, 0x1000, 1))
        .memory(MemorySpec::new("slow", 0x1000, 0x2000, 30))
}

fn main() {
    println!("exp_ordering: outstanding-capacity sweep (AXI master, fast+slow targets)\n");
    let sweep = Sweep::over([1u32, 2, 4, 8, 16], |outstanding| {
        (outstanding.to_string(), spec(outstanding), Backend::noc())
    })
    .with_max_cycles(2_000_000);
    let results = sweep.run().expect("specs are consistent");

    let mut t = Table::new(&[
        "outstanding",
        "makespan (cy)",
        "speedup",
        "NIU gates",
        "gates vs 1",
    ]);
    t.numeric();
    let base_cycles = results[0].report.cycles;
    let base_gates = niu_gates(&NiuAreaConfig::new(ProtocolKind::Axi, 1)).total();
    for result in &results {
        let outstanding: u32 = result.label.parse().expect("label is the parameter");
        let cycles = result.report.cycles;
        let gates = niu_gates(&NiuAreaConfig::new(ProtocolKind::Axi, outstanding)).total();
        t.row(&[
            result.label.clone(),
            cycles.to_string(),
            format!("{:.2}x", base_cycles as f64 / cycles as f64),
            gates.to_string(),
            format!("{:.2}x", gates as f64 / base_gates as f64),
        ]);
    }
    println!("{t}");
    println!("more outstanding transactions -> fewer cycles, more gates (paper §3)");
}
