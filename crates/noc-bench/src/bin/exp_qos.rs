//! Experiment `exp_qos` — transport-layer QoS: pressure classes under
//! hotspot congestion.

use noc_protocols::{Program, SocketCommand};
use noc_scenario::{Backend, InitiatorSpec, MemorySpec, ScenarioSpec, SocketSpec};
use noc_stats::Table;
use noc_transaction::BurstKind;

fn spec(pressures: [u8; 3]) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new();
    for (node, pressure) in pressures.into_iter().enumerate() {
        let program: Program = (0..40)
            .map(|i| {
                SocketCommand::read(0x1000 * (node as u64 + 1) + i * 64, 8)
                    .with_burst(BurstKind::Incr, 8)
                    .with_pressure(pressure)
            })
            .collect();
        spec = spec.initiator(
            InitiatorSpec::new(&format!("class{node}"), SocketSpec::strm(), program)
                .with_outstanding(4),
        );
    }
    spec.memory(MemorySpec::new("mem", 0x0, 0x10_0000, 4))
}

fn run(pressures: [u8; 3]) -> Vec<(f64, u64)> {
    let mut sim = spec(pressures)
        .build(&Backend::noc())
        .expect("valid scenario");
    assert!(sim.run_until(2_000_000));
    sim.report()
        .masters
        .iter()
        .map(|m| (m.mean_latency, m.latency_percentile(0.95)))
        .collect()
}

fn main() {
    println!("exp_qos: three traffic classes hammering one hotspot target\n");
    println!("scenario A: all classes equal pressure (best effort)");
    let mut t = Table::new(&["class", "pressure", "mean (cy)", "p95 (cy)"]);
    t.numeric();
    for (i, (mean, p95)) in run([0, 0, 0]).iter().enumerate() {
        t.row(&[
            format!("class{i}"),
            "0".into(),
            format!("{mean:.1}"),
            p95.to_string(),
        ]);
    }
    println!("{t}");
    println!("scenario B: differentiated pressure 3/1/0");
    let mut t = Table::new(&["class", "pressure", "mean (cy)", "p95 (cy)"]);
    t.numeric();
    let pressures = [3u8, 1, 0];
    for (i, (mean, p95)) in run(pressures).iter().enumerate() {
        t.row(&[
            format!("class{i}"),
            pressures[i].to_string(),
            format!("{mean:.1}"),
            p95.to_string(),
        ]);
    }
    println!("{t}");
    println!("higher pressure -> lower latency under contention; QoS lives in transport only");
}
