//! Experiment `exp_qos` — transport-layer QoS: pressure classes under
//! hotspot congestion.
//!
//! `--scenario FILE` runs one scenario text file instead of the built-in
//! pair of pressure configurations.

use noc_bench::scenarios::qos_spec;
use noc_scenario::{Backend, ScenarioSpec};
use noc_stats::Table;

fn print_table(spec: &ScenarioSpec) -> Result<(), Box<dyn std::error::Error>> {
    let mut sim = spec.build(&Backend::noc())?;
    assert!(sim.run_until(2_000_000));
    let report = sim.report();
    let mut t = Table::new(&["class", "pressure", "mean (cy)", "p95 (cy)"]);
    t.numeric();
    for (ini, m) in spec.initiators.iter().zip(&report.masters) {
        // QoS class: the explicit NIU override, or the class carried by
        // the program's commands.
        let pressure = ini
            .pressure
            .or_else(|| {
                ini.program
                    .explicit()
                    .and_then(|p| p.first())
                    .map(|c| c.pressure)
            })
            .unwrap_or(0);
        t.row(&[
            ini.name.clone(),
            pressure.to_string(),
            format!("{:.1}", m.mean_latency),
            m.latency_percentile(0.95).to_string(),
        ]);
    }
    println!("{t}");
    Ok(())
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    if let Some(path) = noc_bench::scenario_path_arg()? {
        let spec = noc_bench::load_scenario(&path)?;
        println!("exp_qos: scenario file {}\n", path.display());
        return print_table(&spec);
    }
    println!("exp_qos: three traffic classes hammering one hotspot target\n");
    println!("scenario A: all classes equal pressure (best effort)");
    print_table(&qos_spec([0, 0, 0]))?;
    println!("scenario B: differentiated pressure 3/1/0");
    print_table(&qos_spec([3, 1, 0]))?;
    println!("higher pressure -> lower latency under contention; QoS lives in transport only");
    Ok(())
}
