//! Experiment `exp_qos` — transport-layer QoS: pressure classes under
//! hotspot congestion.

use noc_niu::fe::StrmInitiator;
use noc_niu::{InitiatorNiu, InitiatorNiuConfig, MemoryTarget, TargetNiu, TargetNiuConfig};
use noc_protocols::strm::StrmMaster;
use noc_protocols::{MemoryModel, Program, SocketCommand};
use noc_stats::Table;
use noc_system::{NocConfig, SocBuilder};
use noc_topology::Topology;
use noc_transaction::{AddressMap, BurstKind, MstAddr, SlvAddr};

fn run(pressures: [u8; 3]) -> Vec<(f64, u64)> {
    let mut map = AddressMap::new();
    map.add(0x0, 0x10_0000, SlvAddr::new(3)).unwrap();
    let mk = |node: u16, pressure: u8| {
        let program: Program = (0..40)
            .map(|i| {
                SocketCommand::read(0x1000 * (node as u64 + 1) + i * 64, 8)
                    .with_burst(BurstKind::Incr, 8)
                    .with_pressure(pressure)
            })
            .collect();
        InitiatorNiu::new(
            StrmInitiator::new(StrmMaster::new(program, 4)),
            InitiatorNiuConfig::new(MstAddr::new(node)).with_outstanding(4),
            map.clone(),
        )
    };
    let mem = TargetNiu::new(MemoryTarget::new(MemoryModel::new(4), 8), TargetNiuConfig::new(SlvAddr::new(3)));
    let mut soc = SocBuilder::new(Topology::crossbar(4), NocConfig::new())
        .initiator("class0", 0, Box::new(mk(0, pressures[0])))
        .initiator("class1", 1, Box::new(mk(1, pressures[1])))
        .initiator("class2", 2, Box::new(mk(2, pressures[2])))
        .target("mem", 3, Box::new(mem))
        .build()
        .expect("valid wiring");
    let report = soc.run(2_000_000);
    assert!(report.all_done);
    report
        .masters
        .iter()
        .map(|m| (m.mean_latency, m.latency_percentile(0.95)))
        .collect()
}

fn main() {
    println!("exp_qos: three traffic classes hammering one hotspot target\n");
    println!("scenario A: all classes equal pressure (best effort)");
    let mut t = Table::new(&["class", "pressure", "mean (cy)", "p95 (cy)"]);
    t.numeric();
    for (i, (mean, p95)) in run([0, 0, 0]).iter().enumerate() {
        t.row(&[format!("class{i}"), "0".into(), format!("{mean:.1}"), p95.to_string()]);
    }
    println!("{t}");
    println!("scenario B: differentiated pressure 3/1/0");
    let mut t = Table::new(&["class", "pressure", "mean (cy)", "p95 (cy)"]);
    t.numeric();
    let pressures = [3u8, 1, 0];
    for (i, (mean, p95)) in run(pressures).iter().enumerate() {
        t.row(&[format!("class{i}"), pressures[i].to_string(), format!("{mean:.1}"), p95.to_string()]);
    }
    println!("{t}");
    println!("higher pressure -> lower latency under contention; QoS lives in transport only");
}
