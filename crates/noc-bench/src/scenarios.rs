//! The default scenarios and sweeps of the experiment binaries, shared
//! so `gen_scenarios` can serialize the exact same configurations into
//! the `tests/scenarios/` corpus.

use noc_protocols::{Program, SocketCommand};
use noc_scenario::{
    Backend, BurstySpec, InitiatorSpec, MemorySpec, NocConfigSpec, ScenarioSpec, SocketSpec,
    StepMode, Sweep, SweepPoint, TopologySpec, TraceSpec, ZipfSpec,
};
use noc_topology::RouteAlgorithm;
use noc_transaction::{BurstKind, Opcode, StreamId};

/// The `exp_qos` scenario: three streaming classes with the given
/// pressures hammering one hotspot target.
pub fn qos_spec(pressures: [u8; 3]) -> ScenarioSpec {
    let mut spec = ScenarioSpec::new();
    for (node, pressure) in pressures.into_iter().enumerate() {
        let program: Program = (0..40)
            .map(|i| {
                SocketCommand::read(0x1000 * (node as u64 + 1) + i * 64, 8)
                    .with_burst(BurstKind::Incr, 8)
                    .with_pressure(pressure)
            })
            .collect();
        spec = spec.initiator(
            InitiatorSpec::new(&format!("class{node}"), SocketSpec::strm(), program)
                .with_outstanding(4),
        );
    }
    spec.memory(MemorySpec::new("mem", 0x0, 0x10_0000, 4))
}

fn ordering_workload(n: usize) -> Program {
    (0..n)
        .map(|i| {
            let addr = if i % 2 == 0 { 0x1000 } else { 0x0 } + (i as u64 * 4) % 0x800;
            SocketCommand::read(addr, 4).with_stream(StreamId::new(i as u16 % 4))
        })
        .collect()
}

/// One `exp_ordering` point: an AXI master with the given outstanding
/// budget against a fast and a slow target.
pub fn ordering_spec(outstanding: u32) -> ScenarioSpec {
    ScenarioSpec::new()
        .initiator(
            InitiatorSpec::new(
                "axi",
                SocketSpec::Axi {
                    tags: 4,
                    per_id: outstanding,
                    total: outstanding,
                },
                ordering_workload(48),
            )
            .with_outstanding(outstanding),
        )
        .memory(MemorySpec::new("fast", 0x0, 0x1000, 1))
        .memory(MemorySpec::new("slow", 0x1000, 0x2000, 30))
}

/// The `exp_ordering` outstanding-capacity sweep. The first (reference)
/// point carries a dense step override, exercising the per-point
/// [`StepMode`] mix in one grid.
pub fn ordering_sweep() -> Sweep {
    let mut sweep = Sweep::new().with_max_cycles(2_000_000);
    for outstanding in [1u32, 2, 4, 8, 16] {
        let mut point = SweepPoint::new(
            &outstanding.to_string(),
            ordering_spec(outstanding),
            Backend::noc(),
        );
        if outstanding == 1 {
            point = point.with_step(StepMode::Dense);
        }
        sweep = sweep.with_point(point);
    }
    sweep
}

const SLICE: u64 = 0x1_0000;

/// One `exp_scale` point: a `w` x `w` mesh with AXI masters on even
/// switches, memory slices on odd switches, and uniform random reads.
pub fn scale_mesh_spec(w: usize, commands: usize) -> ScenarioSpec {
    let n = w * w;
    let masters: Vec<usize> = (0..n).filter(|s| s % 2 == 0).collect();
    let memories: Vec<usize> = (0..n).filter(|s| s % 2 == 1).collect();
    let mut spec = ScenarioSpec::new();
    for &switch in &masters {
        // uniform random reads over all slices, seeded per master switch
        let program: Program = (0..commands)
            .map(|i| {
                let mut x = (switch as u64) << 32 | i as u64;
                x ^= x >> 12;
                x = x.wrapping_mul(0x2545F4914F6CDD1D);
                x ^= x >> 27;
                let slice_idx = x % memories.len() as u64;
                let addr = slice_idx * SLICE + (x >> 8) % (SLICE - 64);
                SocketCommand::read(addr & !7, 8).with_stream(StreamId::new(i as u16 % 4))
            })
            .collect();
        spec = spec.initiator(
            InitiatorSpec::new(
                &format!("m{switch}"),
                SocketSpec::Axi {
                    tags: 4,
                    per_id: 4,
                    total: 8,
                },
                program,
            )
            .with_outstanding(8),
        );
    }
    for (k, &switch) in memories.iter().enumerate() {
        spec = spec.memory(
            MemorySpec::new(
                &format!("mem{switch}"),
                k as u64 * SLICE,
                (k as u64 + 1) * SLICE,
                2,
            )
            .with_queue(8),
        );
    }
    // Row-major mesh links; masters first then memories, each on its own
    // switch, so XY routing stays deadlock-free.
    let placement: Vec<usize> = masters.iter().chain(memories.iter()).copied().collect();
    let links = mesh_links(w, w);
    spec.with_topology(TopologySpec::Custom {
        switches: n,
        links,
        placement,
    })
    .with_routing(RouteAlgorithm::XyMesh {
        width: w,
        height: w,
    })
}

fn mesh_links(width: usize, height: usize) -> Vec<(usize, usize)> {
    let mut links = Vec::new();
    for y in 0..height {
        for x in 0..width {
            let s = y * width + x;
            if x + 1 < width {
                links.push((s, s + 1));
            }
            if y + 1 < height {
                links.push((s, s + width));
            }
        }
    }
    links
}

/// A sparse `w` x `w` mesh (`w` a multiple of 4): a *fixed* population
/// of 8 AXI readers issuing 16 commands each at a low injection rate
/// (long inter-command gaps) and 8 single-slice memories, spread evenly
/// over the mesh — the 16 endpoints sit at the positions of a 4x4
/// sub-grid scaled up by `w/4`, so growing `w` stretches the routes and
/// multiplies the idle switches without adding traffic. That is exactly
/// what the `step_mode` bench group's `mesh_*_sparse` rows measure:
/// wakeup stepping must make per-cycle cost track the (constant)
/// traffic, not the (growing) fabric. The 8x8/16x16 instances are
/// serialized into the corpus as `mesh_8x8_sparse.scn` /
/// `mesh_16x16_sparse.scn`; `sparse_mesh_spec(4)` is exactly the
/// historical `mesh_4x4_sparse` bench workload.
pub fn sparse_mesh_spec(w: usize) -> ScenarioSpec {
    assert!(
        w >= 4 && w.is_multiple_of(4),
        "sparse mesh widths are multiples of 4"
    );
    let mut spec = ScenarioSpec::new();
    for m in 0..8u64 {
        let program: Program = (0..16)
            .map(|i| {
                let addr = m * 0x1000 + i as u64 * 0x40;
                SocketCommand::read(addr, 8)
                    .with_stream(StreamId::new(i as u16 % 4))
                    .with_delay(400 + (i as u32 % 5) * 137)
            })
            .collect();
        spec = spec.initiator(InitiatorSpec::new(
            &format!("m{m}"),
            SocketSpec::axi(),
            program,
        ));
    }
    for k in 0..8u64 {
        spec = spec.memory(MemorySpec::new(
            &format!("mem{k}"),
            k * 0x1000,
            (k + 1) * 0x1000,
            2,
        ));
    }
    if w == 4 {
        // 16 endpoints on 16 switches: the default mesh placement
        // (endpoint i on switch i) already is the scaled sub-grid.
        return spec.with_topology(TopologySpec::Mesh {
            width: w,
            height: w,
        });
    }
    let scale = w / 4;
    let placement: Vec<usize> = (0..16)
        .map(|idx| (idx / 4) * scale * w + (idx % 4) * scale)
        .collect();
    spec.with_topology(TopologySpec::Custom {
        switches: w * w,
        links: mesh_links(w, w),
        placement,
    })
    .with_routing(RouteAlgorithm::XyMesh {
        width: w,
        height: w,
    })
}

/// The 32x32 instance of [`sparse_mesh_spec`], serialized into the
/// corpus as `mesh_32x32_sparse.scn` — the sharded-stepping showcase:
/// 1024 switches carved into regions that meet only on multi-cycle
/// links. Pipelined links deepen every region crossing (the
/// conservative runner's lookahead window), and the `[config] shards`
/// knob makes plain `--step sharded` pick four regions by default.
pub fn sparse_mesh_32_spec() -> ScenarioSpec {
    sparse_mesh_spec(32).with_config(NocConfigSpec::new().with_link_pipeline(2).with_shards(4))
}

/// The `exp_scale` mesh-size sweep over the given widths.
pub fn scale_sweep(widths: &[usize], commands: usize) -> Sweep {
    Sweep::over(widths.iter().copied(), |w| {
        (
            format!("{w}x{w}"),
            scale_mesh_spec(w, commands),
            Backend::noc(),
        )
    })
    .with_max_cycles(20_000_000)
}

/// A prefix-sharing sweep for the serve layer: every point reuses one
/// `w` x `w` mesh platform — identical topology, routing, socket shapes
/// and memory map — and varies only the traffic programs. A warm
/// `scn serve` process builds the platform once and forks every further
/// point from the checkpoint cache; a one-shot runner rebuilds it per
/// point. The serve benchmark group measures exactly that gap.
pub fn serve_sweep(w: usize, points: usize) -> Sweep {
    let platform = scale_mesh_spec(w, 1);
    let slices = (w * w) / 2;
    Sweep::over(0..points, |k| {
        let mut spec = platform.clone();
        for (m, ini) in spec.initiators.iter_mut().enumerate() {
            ini.program = serve_point_program(k, m, slices).into();
        }
        (format!("p{k:02}"), spec, Backend::noc())
    })
    .with_max_cycles(1_000_000)
}

/// A tiny per-point program (one read), varied by point and master so
/// every sweep cell is distinct traffic on the shared platform while
/// platform construction stays the dominant per-point cost.
fn serve_point_program(point: usize, master: usize, slices: usize) -> Program {
    let mut x = ((point as u64) << 40) ^ ((master as u64) << 20) ^ 1;
    x ^= x >> 12;
    x = x.wrapping_mul(0x2545_F491_4F6C_DD1D);
    x ^= x >> 27;
    let addr = x % (slices as u64 * SLICE - 64);
    vec![SocketCommand::read(addr & !7, 8)]
}

/// A mixed-clock scenario on a 2x2 mesh: three sockets and two memories
/// on divided clocks (NoC backend only — the baselines reject divided
/// clocks by design).
pub fn clocked_mixed_spec() -> ScenarioSpec {
    let cpu: Program = (0..10)
        .map(|i| {
            if i % 3 == 0 {
                SocketCommand::write(0x40 * i, 4, 0xC0FE + i).with_delay(2)
            } else {
                SocketCommand::read(0x40 * i, 4)
            }
        })
        .collect();
    let video: Program = (0..8)
        .map(|i| {
            SocketCommand::read(0x1000 + 0x80 * i, 4)
                .with_burst(BurstKind::Incr, 4)
                .with_stream(StreamId::new(i as u16 % 2))
        })
        .collect();
    let sensor: Program = (0..6)
        .map(|i| SocketCommand::write(0x400 + 0x20 * i, 4, 0x5E + i).with_delay(5))
        .collect();
    ScenarioSpec::new()
        .initiator(InitiatorSpec::new("cpu", SocketSpec::Ahb, cpu).with_flit_bytes(8))
        .initiator(
            InitiatorSpec::new("video", SocketSpec::ocp(), video)
                .with_ordering(noc_transaction::OrderingModel::IdBased { tags: 4 })
                .with_outstanding(4)
                .with_clock_divisor(2),
        )
        .initiator(
            InitiatorSpec::new("sensor", SocketSpec::strm(), sensor)
                .with_pressure(2)
                .with_clock_divisor(3),
        )
        .memory(MemorySpec::new("m0", 0x0, 0x1000, 2))
        .memory(MemorySpec::new("m1", 0x1000, 0x2000, 4).with_clock_divisor(2))
        .with_topology(TopologySpec::Mesh {
            width: 2,
            height: 2,
        })
}

/// The `exp_services` scenario: three socket protocols driving all
/// three declarative target kinds — a plain memory, an AXI-slave DRAM
/// controller with banked latency, and a register/service block with a
/// slow write path. Every initiator owns private sub-ranges of every
/// target, so the completion data is interconnect-independent and the
/// spec runs on all three backends.
pub fn services_spec() -> ScenarioSpec {
    let cpu: Program = (0..8)
        .flat_map(|i| {
            vec![
                SocketCommand::write(0x100 + 0x40 * i, 4, 0xCAFE + i),
                SocketCommand::read(0x100 + 0x40 * i, 4),
                SocketCommand::read(0x4100 + 0x40 * i, 4).with_burst(BurstKind::Incr, 2),
            ]
        })
        .collect();
    let dma: Program = (0..10)
        .map(|i| {
            SocketCommand::read(0x5000 + 0x100 * i, 8)
                .with_burst(BurstKind::Wrap, 4)
                .with_stream(StreamId::new(i as u16 % 4))
        })
        .chain((0..6).map(|i| {
            SocketCommand::write(0x1000 + 0x40 * i, 8, 0xD0A0 + i)
                .with_burst(BurstKind::Incr, 2)
                .with_stream(StreamId::new(i as u16 % 4))
        }))
        .collect();
    let ctl: Program = (0..10)
        .flat_map(|i| {
            vec![
                SocketCommand::write(0x8100 + 0x20 * i, 4, 0xC2 + i).with_delay(6),
                SocketCommand::read(0x8100 + 0x20 * i, 4),
            ]
        })
        .collect();
    ScenarioSpec::new()
        .initiator(InitiatorSpec::new("cpu", SocketSpec::Ahb, cpu))
        .initiator(
            InitiatorSpec::new(
                "dma",
                SocketSpec::Axi {
                    tags: 4,
                    per_id: 2,
                    total: 4,
                },
                dma,
            )
            .with_outstanding(4),
        )
        .initiator(InitiatorSpec::new("ctl", SocketSpec::bvci(), ctl))
        .memory(MemorySpec::new("ram", 0x0, 0x4000, 2))
        .memory(MemorySpec::axi_slave("dram", 0x4000, 0x8000, 6, 2))
        .memory(MemorySpec::service("regs", 0x8000, 0x9000, 1, 3))
}

/// Semaphore address of the `exp_exclusive` schemes.
const SEM: u64 = 0x40;

/// One `exp_exclusive` point: a synchronising master running the given
/// scheme against a declarative semaphore service block, with a
/// bystander hammering a separate memory through the same fabric.
///
/// The semaphore is a `service` target with the `exclusive` flag — the
/// declarative form of the paper's §3 target: the NoC backend handles
/// the exclusive pair in NIU state, the bridged crossbar in its central
/// monitor, and the bus backend rejects the spec with the typed
/// [`noc_scenario::ScenarioError::UnsupportedTarget`] (its exclusive
/// arbitration cannot be delegated to a target-owned port).
pub fn exclusive_scheme_spec(scheme: &str) -> ScenarioSpec {
    let sync: Program = match scheme {
        "idle" => Vec::new(),
        "exclusive" => (0..12)
            .flat_map(|_| {
                vec![
                    SocketCommand::read(SEM, 4).with_opcode(Opcode::ReadExclusive),
                    SocketCommand::write(SEM, 4, 1).with_opcode(Opcode::WriteExclusive),
                ]
            })
            .collect(),
        "locked" => (0..12)
            .flat_map(|_| {
                vec![
                    SocketCommand::read(SEM, 4).with_opcode(Opcode::ReadLocked),
                    SocketCommand::write(SEM, 4, 1)
                        .with_opcode(Opcode::WriteUnlock)
                        .with_delay(40),
                ]
            })
            .collect(),
        other => panic!("unknown exclusive scheme {other:?}"),
    };
    let bystander: Program = (0..40)
        .map(|i| SocketCommand::read(0x1000 + i * 16, 4))
        .collect();
    // One shared target: the synchronisation scheme and the bystander
    // traffic meet at the same node, so READEX/LOCK path pinning (and
    // the target-side lock arbiter) is visible in bystander latency —
    // the paper's §3 comparison, now declared instead of hand-built.
    ScenarioSpec::new()
        .initiator(InitiatorSpec::new("sync", SocketSpec::Ahb, sync))
        .initiator(InitiatorSpec::new("bystander", SocketSpec::Ahb, bystander))
        .memory(
            MemorySpec::service("sem", 0x0, 0x2000, 2, 2)
                .with_exclusive()
                .with_queue(8),
        )
}

/// The `exp_exclusive` scheme sweep: bystander latency and fabric
/// lock-idle cycles under an idle, exclusive-access and READEX/LOCK
/// neighbour (NoC backend — the experiment reads fabric counters).
pub fn exclusive_sweep() -> Sweep {
    Sweep::over(["idle", "exclusive", "locked"], |scheme| {
        (
            scheme.to_string(),
            exclusive_scheme_spec(scheme),
            Backend::noc(),
        )
    })
    .with_max_cycles(2_000_000)
}

/// The deep-pipeline scenario: a 2x2 mesh whose links carry 16 pipeline
/// register stages (declared in the `[config]` section, so the physical
/// shape lives in the `.scn` file), slow memories, and masters that
/// issue back-to-back — traffic is in flight on almost every cycle.
///
/// This is the workload the event-horizon machinery exists for: dense
/// stepping pays every one of those cycles, while per-layer
/// `next_event_at` horizons jump through the link crossings and memory
/// service windows. The step-collapse acceptance test pins a ≥ 3x
/// executed-step ratio on the NoC *and* bridged backends (the bridged
/// pipeline skips through its `eligible_at`/`busy_until`/`respond_at`
/// stamps), so clocks stay undivided to keep the spec portable to the
/// baselines.
pub fn deep_pipeline_spec() -> ScenarioSpec {
    let cpu: Program = (0..12)
        .flat_map(|i| {
            vec![
                SocketCommand::write(0x100 + 0x40 * i, 4, 0xDEE9 + i),
                SocketCommand::read(0x100 + 0x40 * i, 4),
                SocketCommand::read(0x1100 + 0x40 * i, 4).with_burst(BurstKind::Incr, 2),
            ]
        })
        .collect();
    // Single outstanding on purpose: a second thread would park a
    // request at the (1-deep) bridge and pin the master's front end
    // hot, forcing dense stepping for the whole run.
    let dma: Program = (0..16)
        .map(|i| {
            SocketCommand::read(0x1800 + 0x20 * i, 4)
                .with_burst(BurstKind::Incr, 2)
                .with_delay(6)
        })
        .collect();
    let mut config = NocConfigSpec::new()
        .with_link_pipeline(16)
        .with_link_capacity(32);
    // Endpoint attachments are short wires next to the switch; the long
    // pipelined crossings are the inter-switch links.
    config.endpoint.pipeline = Some(2);
    ScenarioSpec::new()
        .initiator(InitiatorSpec::new("cpu", SocketSpec::Ahb, cpu))
        .initiator(
            InitiatorSpec::new(
                "dma",
                SocketSpec::Ocp {
                    threads: 1,
                    per_thread: 1,
                },
                dma,
            )
            .with_outstanding(2),
        )
        .memory(MemorySpec::new("m0", 0x0, 0x1000, 12))
        .memory(MemorySpec::new("m1", 0x1000, 0x2000, 12))
        .with_topology(TopologySpec::Mesh {
            width: 2,
            height: 2,
        })
        .with_config(config)
}

/// A ring-topology scenario with VCI/AXI masters and no divided clocks,
/// so it runs on all three backends.
pub fn ring_mixed_spec() -> ScenarioSpec {
    let dsp: Program = (0..12)
        .map(|i| {
            if i % 4 == 0 {
                SocketCommand::write(0x20 * i, 4, 0xD5 + i)
            } else {
                SocketCommand::read(0x20 * i, 4).with_burst(BurstKind::Incr, 2)
            }
        })
        .collect();
    let dma: Program = (0..10)
        .map(|i| {
            SocketCommand::read(0x800 + 0x40 * i, 8)
                .with_burst(BurstKind::Wrap, 4)
                .with_stream(StreamId::new(i as u16 % 4))
        })
        .collect();
    let ctl: Program = (0..8)
        .map(|i| {
            if i % 2 == 0 {
                SocketCommand::write(0x700 + 8 * i, 4, 0xC7 + i)
            } else {
                SocketCommand::read(0x700 + 8 * i, 4).with_delay(4)
            }
        })
        .collect();
    ScenarioSpec::new()
        .initiator(InitiatorSpec::new("dsp", SocketSpec::bvci(), dsp))
        .initiator(
            InitiatorSpec::new(
                "dma",
                SocketSpec::Axi {
                    tags: 4,
                    per_id: 2,
                    total: 4,
                },
                dma,
            )
            .with_outstanding(4),
        )
        .initiator(InitiatorSpec::new("ctl", SocketSpec::pvci(), ctl))
        .memory(MemorySpec::new("lo", 0x0, 0x800, 1).with_queue(4))
        .memory(MemorySpec::new("hi", 0x800, 0x1000, 3))
        .with_topology(TopologySpec::Ring { switches: 3 })
}

/// The bursty-storm corpus scenario: three multi-stream sockets firing
/// seeded on/off bursts at a shared memory map. Long idle gaps between
/// bursts give the event horizons real dead time to skip, and the
/// generators make the file a standing regression test for seeded
/// stochastic determinism across backends and step modes.
pub fn bursty_storm_spec() -> ScenarioSpec {
    let mut dsp = BurstySpec::new(0xB00B57, 120, 6, 40);
    dsp.shape.streams = 2;
    dsp.shape.gap = 1;
    let mut dma = BurstySpec::new(0xD1157, 140, 8, 64);
    dma.shape.streams = 4;
    dma.shape.read_pct = 40;
    dma.shape.beats = 8;
    let mut cpu = BurstySpec::new(0xC0FFEE, 90, 3, 48);
    cpu.shape.beats = 2;
    ScenarioSpec::new()
        .initiator(InitiatorSpec::new("dsp", SocketSpec::ocp(), dsp))
        .initiator(InitiatorSpec::new("dma", SocketSpec::axi(), dma).with_outstanding(8))
        .initiator(InitiatorSpec::new("cpu", SocketSpec::Ahb, cpu))
        .memory(MemorySpec::new("dram", 0x0, 0x4000, 6).with_queue(4))
        .memory(MemorySpec::new("sram", 0x4000, 0x6000, 2).with_queue(2))
        .memory(MemorySpec::new("mmio", 0x6000, 0x7000, 4).with_queue(2))
}

/// The hotspot-storm corpus scenario: six blocking AHB initiators whose
/// Zipf target pick concentrates ~three quarters of the traffic on a
/// slow first-declared memory. Blocking masters keep each request's
/// latency attributable to its own target (no per-thread response
/// chaining), so the hot target's service+queue wait shows up as a
/// clean per-target latency spread (`scn --assert-target-spread`).
pub fn zipf_hotspot_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new();
    for (i, seed) in [0x21F0u64, 0x21F1, 0x21F2, 0x21F3, 0x21F4, 0x21F5]
        .into_iter()
        .enumerate()
    {
        let mut z = ZipfSpec::new(seed, 150, 2200);
        z.shape.gap = 1;
        spec = spec.initiator(InitiatorSpec::new(&format!("gen{i}"), SocketSpec::Ahb, z));
    }
    spec.memory(MemorySpec::new("hot", 0x0, 0x1000, 28).with_queue(8))
        .memory(MemorySpec::new("warm", 0x1000, 0x2000, 2).with_queue(4))
        .memory(MemorySpec::new("cool", 0x2000, 0x3000, 2).with_queue(4))
        .memory(MemorySpec::new("cold", 0x3000, 0x4000, 2).with_queue(4))
}

/// The hotspot storm on a 16x16 mesh — the partition-quality corpus
/// scenario. Eight Zipf generators and four memories keep the default
/// round-robin placement, which parks all twelve endpoints on switches
/// 0..11 of a 256-switch fabric: the naive band cut (64 switches per
/// region) then puts every endpoint *and* every flit in region 0 and
/// the other three regions idle, while the balanced cut (the build
/// default, from the static load estimate) splits the cluster itself.
/// The bench gates balanced-vs-band wall clock on this spec, and CI
/// gates its epoch occupancy (`scn --assert-occupancy`).
pub fn zipf_hotspot_mesh16_spec() -> ScenarioSpec {
    let mut spec = ScenarioSpec::new();
    for (i, seed) in [
        0x16F0u64, 0x16F1, 0x16F2, 0x16F3, 0x16F4, 0x16F5, 0x16F6, 0x16F7,
    ]
    .into_iter()
    .enumerate()
    {
        let mut z = ZipfSpec::new(seed, 150, 2200);
        z.shape.gap = 1;
        spec = spec.initiator(InitiatorSpec::new(&format!("gen{i}"), SocketSpec::Ahb, z));
    }
    spec.memory(MemorySpec::new("hot", 0x0, 0x1000, 28).with_queue(8))
        .memory(MemorySpec::new("warm", 0x1000, 0x2000, 2).with_queue(4))
        .memory(MemorySpec::new("cool", 0x2000, 0x3000, 2).with_queue(4))
        .memory(MemorySpec::new("cold", 0x3000, 0x4000, 2).with_queue(4))
        .with_topology(TopologySpec::Mesh {
            width: 16,
            height: 16,
        })
        .with_config(NocConfigSpec::new().with_shards(4))
}

/// The naive contiguous band cut over `switches`, `regions` equal
/// slices — what the partitioner falls back to with no load signal,
/// pinned explicitly so benchmarks can race it against the balanced
/// default.
pub fn band_assignment(switches: usize, regions: usize) -> Vec<usize> {
    (0..switches)
        .map(|s| (s * regions / switches).min(regions - 1))
        .collect()
}

/// The trace-replay corpus scenario: an OCP initiator streaming the
/// checked-in `trace_replay.trace` (written by `gen_scenarios` next to
/// the `.scn` file) alongside an explicit AHB control master.
pub fn trace_replay_spec() -> ScenarioSpec {
    let ctl: Program = (0..10)
        .map(|i| {
            if i % 2 == 0 {
                SocketCommand::write(0x2000 + 0x20 * i, 4, 0x7E + i)
            } else {
                SocketCommand::read(0x2000 + 0x20 * i, 4).with_delay(16)
            }
        })
        .collect();
    ScenarioSpec::new()
        .initiator(InitiatorSpec::new(
            "replay",
            SocketSpec::ocp(),
            TraceSpec::new("trace_replay.trace"),
        ))
        .initiator(InitiatorSpec::new("ctl", SocketSpec::Ahb, ctl))
        .memory(MemorySpec::new("dram", 0x0, 0x2000, 5).with_queue(4))
        .memory(MemorySpec::new("mmio", 0x2000, 0x3000, 2).with_queue(2))
}

/// The companion trace for [`trace_replay_spec`]: 200 seeded records on
/// 2 OCP threads, bursts of back-to-back commands separated by long
/// idle stretches (dead time for the horizon machinery). Both streams
/// appear in the first burst, satisfying the feeder's primed-window
/// rule.
pub fn trace_replay_trace() -> String {
    let mut rng = noc_kernel::SplitMix64::new(0x7124CE);
    let mut out = String::from(
        "# trace_replay.trace -- written by `cargo run -p noc-bench --bin gen_scenarios`\n\
         # format: cycle op addr beats beat_bytes [stream]\n",
    );
    let mut cycle = 0u64;
    for i in 0..200u64 {
        if i > 0 {
            // A new burst every 8 records; bursts are back-to-back.
            cycle += if i % 8 == 0 {
                60 + rng.next_below(80)
            } else {
                rng.next_below(3)
            };
        }
        let op = if rng.chance(0.7) { "read" } else { "write" };
        let addr = rng.next_below(0x1F0) * 0x10;
        let beats = [1u64, 2, 4][rng.next_below(3) as usize];
        let stream = i % 2;
        out.push_str(&format!("{cycle} {op} {addr:#x} {beats} 4 {stream}\n"));
    }
    out
}
