//! Shared helpers for the experiment binaries that regenerate every
//! paper figure/claim table. See EXPERIMENTS.md for the index.

use noc_baseline::Interconnect;
use noc_protocols::CompletionLog;

/// Mean latency across a set of completion logs.
pub fn mean_latency(logs: &[&CompletionLog]) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for log in logs {
        sum += log.mean_latency() * log.len() as f64;
        n += log.len();
    }
    if n == 0 {
        0.0
    } else {
        sum / n as f64
    }
}

/// Runs a baseline interconnect to completion, panicking on timeout.
pub fn run_baseline<I: Interconnect>(ic: &mut I, max: u64, label: &str) {
    assert!(ic.run(max), "{label} failed to drain in {max} cycles");
}
