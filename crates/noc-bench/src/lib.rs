//! Host crate for the experiment binaries (`src/bin/exp_*`) that
//! regenerate every paper figure/claim table, and the subsystem
//! micro-benchmarks in `benches/`.
//!
//! The binaries drive scenarios through [`noc_scenario`]. The scenario
//! and sweep builders each binary uses by default live in [`scenarios`]
//! (also reused by `gen_scenarios` to produce the `tests/scenarios/`
//! corpus), and every spec-driven binary accepts `--scenario FILE` to
//! swap the built-in for a parsed scenario text file.

use noc_scenario::{ScenarioSpec, Sweep};
use std::path::{Path, PathBuf};

pub mod scenarios;

/// The `--scenario FILE` argument, if present on the command line.
///
/// # Errors
///
/// Returns an error when `--scenario` is given without a following path.
pub fn scenario_path_arg() -> Result<Option<PathBuf>, Box<dyn std::error::Error>> {
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        if arg == "--scenario" {
            return match args.next() {
                Some(path) => Ok(Some(PathBuf::from(path))),
                None => Err("--scenario needs a file path".into()),
            };
        }
    }
    Ok(None)
}

/// Loads a single-scenario text file, with the file name woven into any
/// error.
///
/// # Errors
///
/// Returns I/O failures and [`noc_scenario::ScenarioError`]s as boxed
/// errors ready for `?` in `main`.
pub fn load_scenario(path: &Path) -> Result<ScenarioSpec, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    ScenarioSpec::from_text(&text).map_err(|e| format!("{}: {e}", path.display()).into())
}

/// Loads a sweep text file, with the file name woven into any error.
///
/// # Errors
///
/// Returns I/O failures and [`noc_scenario::ScenarioError`]s as boxed
/// errors ready for `?` in `main`.
pub fn load_sweep(path: &Path) -> Result<Sweep, Box<dyn std::error::Error>> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Sweep::from_text(&text).map_err(|e| format!("{}: {e}", path.display()).into())
}
