//! Host crate for the experiment binaries (`src/bin/exp_*`) that
//! regenerate every paper figure/claim table, and the subsystem
//! micro-benchmarks in `benches/`.
//!
//! The binaries drive scenarios through [`noc_scenario`] — per-master
//! results come from [`noc_scenario::ScenarioReport`], so there are no
//! shared latency helpers here anymore.
