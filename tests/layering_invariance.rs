//! The paper's §1 claim made executable: *"wormhole or store-and-forward
//! packet handling makes no difference at the transaction level"* — and
//! neither do flit width, link pipelining or clock ratios.
//!
//! Each master works in a private address window (so no cross-master
//! write/read races exist), which makes the transaction-level outcome a
//! pure function of the programs. We then sweep transport and physical
//! configurations and assert the per-master functional fingerprints are
//! bit-identical, while timing is free to (and does) change.

use noc_niu::fe::{AhbInitiator, AxiInitiator, OcpInitiator};
use noc_niu::{InitiatorNiu, InitiatorNiuConfig, MemoryTarget, TargetNiu, TargetNiuConfig};
use noc_physical::LinkConfig;
use noc_protocols::ahb::AhbMaster;
use noc_protocols::axi::AxiMaster;
use noc_protocols::ocp::OcpMaster;
use noc_protocols::{MemoryModel, Program, SocketCommand};
use noc_system::{NocConfig, Soc, SocBuilder};
use noc_topology::{RouteAlgorithm, Topology};
use noc_transaction::{
    AddressMap, BurstKind, Fingerprint, MstAddr, OrderingModel, SlvAddr, StreamId,
};
use noc_transport::SwitchMode;

/// Per-stream-private program: stream `s` of master `m` owns window
/// `base + (m*4+s)*0x1000`, eliminating all races.
fn private_program(master: usize, streams: u16, n: usize) -> Program {
    let mut program = Vec::new();
    for i in 0..n {
        let s = (i as u16) % streams;
        let base = (master as u64 * 4 + s as u64) * 0x1000;
        let addr = base + ((i as u64 / streams as u64) * 16) % 0x800;
        let cmd = if i % 3 == 0 {
            SocketCommand::write(addr, 4, (master as u64) << 32 | i as u64)
                .with_burst(BurstKind::Incr, 4)
        } else {
            SocketCommand::read(addr, 4).with_burst(BurstKind::Incr, 4)
        };
        program.push(cmd.with_stream(StreamId::new(s)));
    }
    program
}

/// Builds a 3-master mixed-protocol SoC on a 2x2 mesh with the given
/// transport/physical config.
fn build(noc: NocConfig, n: usize) -> Soc {
    let mut map = AddressMap::new();
    map.add(0x0, 0x100_0000, SlvAddr::new(3)).unwrap();
    let topo = Topology::mesh(2, 2); // nodes 0..3, one per switch
    let ahb = InitiatorNiu::new(
        AhbInitiator::new(AhbMaster::new(private_program(0, 1, n))),
        InitiatorNiuConfig::new(MstAddr::new(0)),
        map.clone(),
    );
    let ocp = InitiatorNiu::new(
        OcpInitiator::new(OcpMaster::new(private_program(1, 2, n), 2, 2)),
        InitiatorNiuConfig::new(MstAddr::new(1))
            .with_ordering(OrderingModel::Threaded { threads: 2 })
            .with_outstanding(4),
        map.clone(),
    );
    let axi = InitiatorNiu::new(
        AxiInitiator::new(AxiMaster::new(private_program(2, 4, n), 2, 8)),
        InitiatorNiuConfig::new(MstAddr::new(2))
            .with_ordering(OrderingModel::IdBased { tags: 4 })
            .with_outstanding(8),
        map,
    );
    let mem = TargetNiu::new(
        MemoryTarget::new(MemoryModel::new(4), 8),
        TargetNiuConfig::new(SlvAddr::new(3)),
    );
    SocBuilder::new(topo, noc)
        .initiator("ahb", 0, Box::new(ahb))
        .initiator("ocp", 1, Box::new(ocp))
        .initiator("axi", 2, Box::new(axi))
        .target("mem", 3, Box::new(mem))
        .build()
        .expect("valid wiring")
}

fn run(noc: NocConfig) -> (Vec<Fingerprint>, u64) {
    let mut soc = build(noc, 30);
    let report = soc.run(2_000_000);
    assert!(report.all_done, "config must drain: {report}");
    (
        report.masters.iter().map(|m| m.fingerprint).collect(),
        report.cycles,
    )
}

fn base_config() -> NocConfig {
    NocConfig::new().with_routing(RouteAlgorithm::XyMesh {
        width: 2,
        height: 2,
    })
}

#[test]
fn wormhole_vs_store_and_forward_same_transactions() {
    let (wh, wh_cycles) = run(base_config().with_mode(SwitchMode::Wormhole));
    let (saf, saf_cycles) = run(
        base_config()
            .with_mode(SwitchMode::StoreAndForward)
            .with_buffer_depth(32), // SAF needs whole packets buffered
    );
    assert_eq!(wh, saf, "switching mode must be invisible to transactions");
    assert_ne!(
        wh_cycles, saf_cycles,
        "but timing should differ (SAF is slower)"
    );
    assert!(saf_cycles > wh_cycles, "store-and-forward adds latency");
}

#[test]
fn flit_width_is_invisible_to_transactions() {
    // Narrower links: 2 phits per flit (half width), 4 phits (quarter).
    let (full, t_full) = run(base_config());
    let (half, t_half) = run(base_config().with_link(LinkConfig::new().with_phits_per_flit(2)));
    let (quarter, t_quarter) =
        run(base_config().with_link(LinkConfig::new().with_phits_per_flit(4)));
    assert_eq!(full, half);
    assert_eq!(full, quarter);
    assert!(t_half > t_full, "narrower links cost time");
    assert!(t_quarter > t_half);
}

#[test]
fn link_pipelining_is_invisible_to_transactions() {
    let (p0, t0) = run(base_config());
    let (p3, t3) = run(base_config().with_link(LinkConfig::new().with_pipeline(3)));
    assert_eq!(p0, p3);
    assert!(t3 > t0, "pipeline stages add latency");
}

#[test]
fn buffer_depth_is_invisible_to_transactions() {
    let (small, _) = run(base_config().with_buffer_depth(2));
    let (large, _) = run(base_config().with_buffer_depth(32));
    assert_eq!(small, large);
}

#[test]
fn routing_algorithm_is_invisible_to_transactions() {
    let (xy, _) = run(base_config());
    let (sp, _) = run(NocConfig::new().with_routing(RouteAlgorithm::ShortestPath));
    let (ud, _) = run(NocConfig::new().with_routing(RouteAlgorithm::UpDown));
    assert_eq!(xy, sp);
    assert_eq!(xy, ud);
}

#[test]
fn clock_ratios_are_invisible_to_transactions() {
    // Run the same SoC with the memory endpoint on a /2 clock via CDC
    // links (built manually since the scenario helper fixes clocks).
    let mut map = AddressMap::new();
    map.add(0x0, 0x100_0000, SlvAddr::new(3)).unwrap();
    let build_clocked = |div: u64| {
        let topo = Topology::mesh(2, 2);
        let ahb = InitiatorNiu::new(
            AhbInitiator::new(AhbMaster::new(private_program(0, 1, 20))),
            InitiatorNiuConfig::new(MstAddr::new(0)),
            map.clone(),
        );
        let mem = TargetNiu::new(
            MemoryTarget::new(MemoryModel::new(4), 8),
            TargetNiuConfig::new(SlvAddr::new(3)),
        );
        SocBuilder::new(topo, base_config())
            .initiator("ahb", 0, Box::new(ahb))
            .target_clocked("mem", 3, Box::new(mem), div)
            .build()
            .expect("valid wiring")
    };
    let fast = build_clocked(1).run(2_000_000);
    let slow = build_clocked(2).run(2_000_000);
    assert!(fast.all_done && slow.all_done);
    assert_eq!(
        fast.masters[0].fingerprint, slow.masters[0].fingerprint,
        "clock ratio must be invisible to transactions"
    );
    assert!(
        slow.cycles > fast.cycles,
        "slow memory clock costs time: {} vs {}",
        slow.cycles,
        fast.cycles
    );
}
