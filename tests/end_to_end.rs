//! End-to-end integration: the full mixed-protocol set-top SoC (paper
//! Fig 1) runs to completion on the NoC with every socket's ordering
//! contract intact.

use noc_protocols::checker::{check_ahb_order, check_axi_order, check_ocp_order};
use noc_system::Soc;
use noc_workloads::{SetTop, SetTopConfig};

/// Compiles the set-top spec to its NoC realisation (unwrapped to the
/// concrete [`Soc`] for NoC-native reporting).
fn build_noc(cfg: SetTopConfig) -> Soc {
    SetTop::new(cfg)
        .spec()
        .build_noc(cfg.noc)
        .expect("set-top spec is consistent")
        .into_inner()
}

#[test]
fn set_top_soc_drains_and_honours_every_ordering_contract() {
    let mut soc = build_noc(SetTopConfig::new(24, 0xC0FFEE));
    let report = soc.run(1_000_000);
    assert!(report.all_done, "SoC must drain: {report}");
    for m in &report.masters {
        assert_eq!(m.completions, 24, "{}", m.name);
        assert_eq!(m.errors, 0, "{}", m.name);
        assert!(m.mean_latency > 0.0, "{}", m.name);
    }
    for (name, log) in soc.completion_logs() {
        // every socket obeys at least its own ordering contract
        let result = if name.contains("AHB")
            || name.contains("PVCI")
            || name.contains("BVCI")
            || name.contains("STRM")
        {
            check_ahb_order(log)
        } else if name.contains("OCP") || name.contains("AVCI") {
            check_ocp_order(log)
        } else {
            check_axi_order(log)
        };
        assert!(result.is_ok(), "{name}: {result:?}");
    }
}

#[test]
fn fabric_carries_traffic_for_every_master() {
    let mut soc = build_noc(SetTopConfig::new(10, 7));
    let report = soc.run(500_000);
    assert!(report.all_done);
    assert!(report.fabric.flits_forwarded > 0);
    assert!(
        report.fabric.packets_forwarded >= 70,
        "7 masters x >=10 packets, got {}",
        report.fabric.packets_forwarded
    );
    assert!(report.fabric.request_flits > 0);
    assert!(report.fabric.response_flits > 0);
}

#[test]
fn deterministic_replay_same_seed_same_everything() {
    let run = || {
        let mut soc = build_noc(SetTopConfig::new(12, 1234));
        let report = soc.run(1_000_000);
        (
            report.cycles,
            report.system_fingerprint(),
            report.fabric.flits_forwarded,
        )
    };
    assert_eq!(run(), run(), "bit-for-bit reproducibility from the seed");
}

#[test]
fn different_seeds_differ() {
    let fp = |seed| {
        let mut soc = build_noc(SetTopConfig::new(12, seed));
        soc.run(1_000_000).system_fingerprint()
    };
    assert_ne!(fp(1), fp(2));
}

#[test]
fn all_masters_complete_under_heavy_load() {
    let mut soc = build_noc(SetTopConfig::new(40, 5));
    let report = soc.run(2_000_000);
    assert!(report.all_done);
    for m in &report.masters {
        assert_eq!(m.completions, 40, "{}", m.name);
        assert_eq!(m.errors, 0, "{}", m.name);
    }
}
