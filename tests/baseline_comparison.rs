//! Fig 1 vs Fig 2 vs shared bus: the same mixed-protocol SoC on three
//! interconnects. The NoC must beat the bus on throughput and beat the
//! bridged interconnect for concurrency-capable masters, reproducing the
//! paper's qualitative claims quantitatively.

use noc_area::{bridge_gates, bus_gates, niu_gates, switch_gates, NiuAreaConfig};
use noc_baseline::{BridgedInterconnect, Interconnect, SharedBus};
use noc_protocols::ProtocolKind;
use noc_system::Soc;
use noc_workloads::{SetTop, SetTopConfig};

fn build_noc(cfg: SetTopConfig) -> Soc {
    SetTop::new(cfg)
        .spec()
        .build_noc(cfg.noc)
        .expect("set-top spec is consistent")
        .into_inner()
}

fn build_bus(cfg: SetTopConfig) -> SharedBus {
    SetTop::new(cfg)
        .spec()
        .build_bus(cfg.bus)
        .expect("set-top spec is consistent")
        .into_inner()
}

fn build_bridged(cfg: SetTopConfig) -> BridgedInterconnect {
    SetTop::new(cfg)
        .spec()
        .build_bridged(cfg.bridge)
        .expect("set-top spec is consistent")
        .into_inner()
}

fn mean_latency(logs: &[&noc_protocols::CompletionLog]) -> f64 {
    let (mut sum, mut n) = (0.0, 0usize);
    for log in logs {
        sum += log.mean_latency() * log.len() as f64;
        n += log.len();
    }
    sum / n as f64
}

#[test]
fn noc_finishes_before_the_bus() {
    let cfg = SetTopConfig::new(20, 42);
    let noc_report = build_noc(cfg).run(2_000_000);
    assert!(noc_report.all_done);
    let mut bus = build_bus(cfg);
    assert!(bus.run(5_000_000));
    assert!(
        (noc_report.cycles as f64) < bus.now() as f64 * 0.8,
        "NoC ({}) must clearly beat the bus ({})",
        noc_report.cycles,
        bus.now()
    );
}

#[test]
fn noc_latency_beats_bridged_for_concurrent_masters() {
    let cfg = SetTopConfig::new(20, 43);
    let noc_report = build_noc(cfg).run(2_000_000);
    assert!(noc_report.all_done);
    let mut bridged = build_bridged(cfg);
    assert!(bridged.run(5_000_000));
    // DMA (AXI, 16 outstanding on the NoC, clamped to 1 behind a bridge)
    let noc_dma = noc_report
        .masters
        .iter()
        .find(|m| m.name.contains("dma"))
        .unwrap();
    let bridged_logs = bridged.logs();
    let bridged_dma = bridged_logs[2]; // attach order: cpu, video, dma, ...
    assert!(
        noc_dma.mean_latency < bridged_dma.mean_latency(),
        "NoC DMA latency {:.1} must beat bridged {:.1}",
        noc_dma.mean_latency,
        bridged_dma.mean_latency()
    );
}

#[test]
fn bridged_is_still_functionally_complete() {
    let cfg = SetTopConfig::new(15, 44);
    let mut bridged = build_bridged(cfg);
    assert!(bridged.run(5_000_000));
    for log in bridged.logs() {
        assert_eq!(log.len(), 15);
        assert_eq!(log.errors(), 0);
    }
}

#[test]
fn whole_system_end_times_order_noc_bridged_bus() {
    let cfg = SetTopConfig::new(20, 45);
    let noc_cycles = {
        let r = build_noc(cfg).run(2_000_000);
        assert!(r.all_done);
        r.cycles
    };
    let bridged_cycles = {
        let mut ic = build_bridged(cfg);
        assert!(ic.run(5_000_000));
        ic.now()
    };
    let bus_cycles = {
        let mut bus = build_bus(cfg);
        assert!(bus.run(5_000_000));
        bus.now()
    };
    assert!(
        noc_cycles < bridged_cycles && bridged_cycles < bus_cycles,
        "expected NoC < bridged < bus, got {noc_cycles} / {bridged_cycles} / {bus_cycles}"
    );
}

#[test]
fn bridged_makespan_exceeds_noc_for_concurrent_masters() {
    // The bridge's latency penalty shows where it clamps concurrency:
    // the DMA (AXI, 16 outstanding) and video (OCP, 2 threads) masters
    // finish much later behind serialising bridges than on the NoC, even
    // though the single-hop crossbar wins on an idle one-shot read.
    let cfg = SetTopConfig::new(20, 46);
    let mut noc = build_noc(cfg);
    let noc_report = noc.run(2_000_000);
    assert!(noc_report.all_done);
    let mut bridged = build_bridged(cfg);
    assert!(bridged.run(5_000_000));
    let makespan = |log: &noc_protocols::CompletionLog| {
        log.records().iter().map(|r| r.completed_at).max().unwrap()
    };
    let noc_logs = noc.completion_logs();
    let bridged_logs = bridged.logs();
    for idx in [1usize, 2] {
        // attach order: cpu=0, video=1, dma=2
        let (name, noc_log) = noc_logs[idx];
        assert!(
            makespan(bridged_logs[idx]) > makespan(noc_log),
            "{name}: bridged {} must exceed NoC {}",
            makespan(bridged_logs[idx]),
            makespan(noc_log)
        );
    }
    let _ = mean_latency(&bridged_logs); // keep helper exercised
}

#[test]
fn adaptation_area_noc_vs_bridges() {
    // Per-socket adaptation logic: NIU (NoC) vs bridge (Fig 2). The
    // bridge needs two protocol front ends plus packet buffering, so per
    // socket it costs more than the matching NIU of modest capacity.
    let sockets = [
        (ProtocolKind::Ahb, 2u32),
        (ProtocolKind::Ocp, 8),
        (ProtocolKind::Axi, 8),
        (ProtocolKind::Strm, 2),
        (ProtocolKind::Pvci, 1),
        (ProtocolKind::Bvci, 2),
        (ProtocolKind::Avci, 4),
    ];
    let mut niu_total = 0u64;
    let mut bridge_total = 0u64;
    for (proto, outstanding) in sockets {
        niu_total += niu_gates(&NiuAreaConfig::new(proto, outstanding)).total();
        bridge_total += bridge_gates(proto, ProtocolKind::Bvci, 8, 4).total();
    }
    // Fabric side: 4 switches (NoC) vs central crossbar + bus glue.
    let noc_fabric: u64 = (0..4).map(|_| switch_gates(5, 5, 72, 8).total()).sum();
    let bridged_fabric = switch_gates(7, 3, 72, 8).total() + bus_gates(7, 3, 8).total();
    let noc_total = niu_total + noc_fabric;
    let fig2_total = bridge_total + bridged_fabric;
    // The paper's area claim is about per-socket adaptation: a bridge
    // (two protocol front ends + store-and-forward buffers) out-costs
    // the matching NIU for every socket in the mix.
    assert!(
        bridge_total > niu_total,
        "bridges {bridge_total} must out-cost NIUs {niu_total}"
    );
    // Whole-system totals depend on fabric sizing (a multi-switch NoC
    // buys its scalability with switch buffers); both must at least be
    // plausible, positive and of the same order of magnitude.
    assert!(noc_total > 0 && fig2_total > 0);
    assert!(noc_total < fig2_total * 4 && fig2_total < noc_total * 4);
}
