//! The scenario text format: golden-corpus fixtures and the
//! negative-parse suite.
//!
//! Every file in `tests/scenarios/` is exact emitter output
//! (`gen_scenarios` regenerates it), so `emit(parse(file)) == file`
//! pins both the grammar and the corpus; and every file must run green
//! through parse → compile → run on every backend that supports it,
//! under dense *and* horizon stepping with record-identical logs — the
//! corpus doubles as a regression battery for the whole stack.

use noc_protocols::CompletionRecord;
use noc_scenario::{
    parse_document, Backend, Document, ParseError, ParseErrorKind, ScenarioError, ScenarioSpec,
    StepMode, Sweep,
};
use std::path::PathBuf;

fn corpus_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/scenarios")
}

fn corpus_files() -> Vec<(String, String)> {
    let mut files: Vec<(String, String)> = std::fs::read_dir(corpus_dir())
        .expect("tests/scenarios exists")
        .map(|entry| entry.expect("readable dir entry").path())
        .filter(|p| p.extension().is_some_and(|e| e == "scn"))
        .map(|p| {
            let name = p
                .file_name()
                .expect("file name")
                .to_string_lossy()
                .into_owned();
            let text = std::fs::read_to_string(&p).expect("readable corpus file");
            (name, text)
        })
        .collect();
    files.sort();
    assert!(
        files.len() >= 6,
        "corpus must hold at least 6 scenario files, found {}",
        files.len()
    );
    files
}

/// Runs a spec on one backend, returning drain flag, final cycle and
/// per-master records (timestamps included).
fn run(
    spec: &ScenarioSpec,
    backend: &Backend,
    mode: StepMode,
) -> Result<(bool, u64, Vec<Vec<CompletionRecord>>), ScenarioError> {
    let mut sim = spec.build(backend)?;
    let drained = sim.run_until_with(10_000_000, mode);
    let logs = sim
        .logs()
        .iter()
        .map(|(_, log)| log.records().to_vec())
        .collect();
    Ok((drained, sim.now(), logs))
}

/// Dense and horizon stepping must agree record-for-record on every
/// backend the spec supports; clocked specs and unsupported target
/// kinds are rejected (with the typed errors) by the baselines and must
/// still run on the NoC.
fn assert_dense_horizon_identical(file: &str, label: &str, spec: &ScenarioSpec) {
    let mut supported = 0;
    for backend in [Backend::noc(), Backend::bridged(), Backend::bus()] {
        let dense = match run(spec, &backend, StepMode::Dense) {
            Ok(outcome) => outcome,
            Err(
                ScenarioError::UnsupportedClock { .. } | ScenarioError::UnsupportedTarget { .. },
            ) => {
                assert!(
                    !matches!(backend, Backend::Noc(_)),
                    "{file}/{label}: the NoC backend must accept every declarable spec"
                );
                continue;
            }
            Err(e) => panic!("{file}/{label}: {backend} failed to compile: {e}"),
        };
        let horizon = run(spec, &backend, StepMode::Horizon).expect("same spec compiles again");
        assert!(dense.0, "{file}/{label}: {backend} must drain densely");
        assert_eq!(
            dense, horizon,
            "{file}/{label}: dense vs horizon divergence on {backend}"
        );
        supported += 1;
    }
    assert!(supported > 0, "{file}/{label}: no backend ran the spec");
}

#[test]
fn corpus_files_are_exact_emitter_output() {
    for (name, text) in corpus_files() {
        let doc =
            parse_document(&text).unwrap_or_else(|e| panic!("{name}: corpus file must parse: {e}"));
        let emitted = match &doc {
            Document::Scenario(spec) => spec.to_text(),
            Document::Sweep(sweep) => sweep.to_text(),
        };
        assert_eq!(
            emitted, text,
            "{name}: stale corpus file — rerun `cargo run -p noc-bench --bin gen_scenarios`"
        );
    }
}

#[test]
fn corpus_covers_the_required_shapes() {
    let files = corpus_files();
    let any = |pred: &dyn Fn(&str) -> bool| files.iter().any(|(_, text)| pred(text));
    assert!(
        any(&|t| t.contains("kind = \"mesh\"")),
        "corpus needs a mesh topology"
    );
    assert!(
        any(&|t| t.contains("kind = \"ring\"")),
        "corpus needs a ring topology"
    );
    assert!(
        any(&|t| t.contains("kind = \"custom\"")),
        "corpus needs a custom topology"
    );
    assert!(
        any(&|t| t.contains("clock_divisor = ")),
        "corpus needs divided clocks"
    );
    assert!(
        any(&|t| t.contains("[[sweep.point]]")),
        "corpus needs a sweep file"
    );
    // mixed protocols: all seven sockets appear somewhere
    for socket in ["ahb", "ocp", "axi", "strm", "pvci", "bvci", "avci"] {
        assert!(
            any(&|t| t.contains(&format!("socket = \"{socket}\""))),
            "corpus never uses the {socket} socket"
        );
    }
    // target-side protocols: both non-memory target kinds appear, and
    // the exclusive service flag is exercised
    for kind in ["axi", "service"] {
        assert!(
            any(&|t| t.contains(&format!("kind = \"{kind}\""))),
            "corpus never declares a {kind} target"
        );
    }
    assert!(
        any(&|t| t.contains("exclusive = true")),
        "corpus needs an exclusive service target"
    );
}

#[test]
fn corpus_runs_identically_dense_and_horizon_on_all_backends() {
    for (name, text) in corpus_files() {
        let mut doc = parse_document(&text).expect("corpus parses");
        // Trace files live next to their .scn files.
        doc.resolve_trace_paths(&corpus_dir());
        match doc {
            Document::Scenario(spec) => assert_dense_horizon_identical(&name, "-", &spec),
            Document::Sweep(sweep) => {
                for p in sweep.points() {
                    assert_dense_horizon_identical(&name, &p.label, &p.spec);
                }
                // The sweep runner itself (which honors per-point step
                // overrides) must agree with the per-point reference runs.
                let results = sweep.run().expect("corpus sweep runs");
                assert_eq!(results.len(), sweep.points().len());
                for (p, r) in sweep.points().iter().zip(&results) {
                    let reference =
                        run(&p.spec, &p.backend, StepMode::Dense).expect("point compiles");
                    assert_eq!(r.report.cycles, reference.1, "{name}/{}", p.label);
                    assert_eq!(
                        r.report.total_completions(),
                        reference.2.iter().map(Vec::len).sum::<usize>(),
                        "{name}/{}",
                        p.label
                    );
                }
            }
        }
    }
}

#[test]
fn per_point_step_override_is_parsed_and_honored() {
    let (_, text) = corpus_files()
        .into_iter()
        .find(|(name, _)| name == "ordering_sweep.scn")
        .expect("ordering sweep is part of the corpus");
    let sweep = Sweep::from_text(&text).expect("parses as a sweep");
    assert_eq!(
        sweep.points()[0].step,
        Some(StepMode::Dense),
        "the reference point pins dense stepping"
    );
    assert!(sweep.points()[1..].iter().all(|p| p.step.is_none()));
    // Round-trips through the emitter too.
    let back = Sweep::from_text(&sweep.to_text()).expect("emitted sweep parses");
    let steps: Vec<Option<StepMode>> = back.points().iter().map(|p| p.step).collect();
    assert_eq!(
        steps,
        sweep.points().iter().map(|p| p.step).collect::<Vec<_>>()
    );
}

// ---------------------------------------------------------------------
// Negative-parse suite: every malformed file yields the expected typed
// error at the expected line.
// ---------------------------------------------------------------------

fn parse_err(text: &str) -> ParseError {
    match ScenarioSpec::from_text(text) {
        Err(ScenarioError::Parse(e)) => e,
        other => panic!("expected a parse error, got {other:?}"),
    }
}

#[test]
fn unknown_key_reports_its_line_and_column() {
    let e = parse_err("[[initiator]]\nname = \"m\"\nsocket = \"ahb\"\nbananas = 3\n");
    assert_eq!((e.line, e.column), (4, 1));
    assert_eq!(e.kind, ParseErrorKind::UnknownKey("bananas".into()));
}

#[test]
fn socket_param_on_wrong_socket_is_rejected() {
    // `tags` belongs to AXI, not AHB.
    let e = parse_err("[[initiator]]\nname = \"m\"\nsocket = \"ahb\"\ntags = 4\n");
    assert_eq!(e.line, 4);
    assert_eq!(e.kind, ParseErrorKind::UnknownKey("tags".into()));
}

#[test]
fn duplicate_initiator_name_reports_the_second_line() {
    let text = "[[initiator]]\nname = \"m\"\nsocket = \"ahb\"\n\n[[initiator]]\nname = \"m\"\nsocket = \"ocp\"\n";
    let e = parse_err(text);
    assert_eq!(e.line, 6);
    assert_eq!(e.kind, ParseErrorKind::DuplicateName("m".into()));
}

#[test]
fn overlapping_memory_regions_report_the_second_region() {
    let text = "[[initiator]]\nname = \"m\"\nsocket = \"ahb\"\n\n[[memory]]\nname = \"a\"\nbase = 0\nend = 0x1000\nlatency = 1\n\n[[memory]]\nname = \"b\"\nbase = 0x800\nend = 0x1800\nlatency = 1\n";
    let e = parse_err(text);
    assert_eq!(e.line, 12);
    assert_eq!(
        e.kind,
        ParseErrorKind::OverlappingRegions {
            a: "a".into(),
            b: "b".into()
        }
    );
}

#[test]
fn empty_region_reports_the_end_line() {
    let text = "[[memory]]\nname = \"a\"\nbase = 0x1000\nend = 0x1000\nlatency = 1\n";
    let e = parse_err(text);
    assert_eq!(e.line, 4);
    assert!(
        matches!(e.kind, ParseErrorKind::BadValue { ref key, .. } if key == "end"),
        "{:?}",
        e.kind
    );
}

#[test]
fn missing_required_key_points_at_the_section() {
    let e = parse_err("[[initiator]]\nsocket = \"ahb\"\n");
    assert_eq!(e.line, 1);
    assert_eq!(
        e.kind,
        ParseErrorKind::MissingKey {
            section: "initiator".into(),
            key: "name".into()
        }
    );
}

#[test]
fn duplicate_key_reports_the_second_occurrence() {
    let e = parse_err("[[initiator]]\nname = \"m\"\nname = \"n\"\nsocket = \"ahb\"\n");
    assert_eq!(e.line, 3);
    assert_eq!(e.kind, ParseErrorKind::DuplicateKey("name".into()));
}

#[test]
fn unknown_section_is_typed() {
    let e = parse_err("[nonsense]\nkey = 1\n");
    assert_eq!(e.line, 1);
    assert_eq!(e.kind, ParseErrorKind::UnknownSection("nonsense".into()));
}

#[test]
fn malformed_command_points_inside_the_string() {
    let e = parse_err("[[initiator]]\nname = \"m\"\nsocket = \"ahb\"\ncmd = \"peek 0x0 1x4\"\n");
    assert_eq!(e.line, 4);
    // column points at "peek", just past `cmd = "`.
    assert_eq!(e.column, 8);
    assert!(
        matches!(e.kind, ParseErrorKind::BadValue { ref key, ref reason }
            if key == "cmd" && reason.contains("peek")),
        "{:?}",
        e.kind
    );
}

#[test]
fn zero_clock_divisor_is_rejected() {
    let e = parse_err("[[initiator]]\nname = \"m\"\nsocket = \"ahb\"\nclock_divisor = 0\n");
    assert_eq!(e.line, 4);
    assert!(matches!(e.kind, ParseErrorKind::BadValue { ref key, .. } if key == "clock_divisor"));
}

// ---------------------------------------------------------------------
// Sharded-partition grammar: `[config] assignment` is validated against
// the finalized topology at parse time, so malformed region maps fail
// with the line and column of the `assignment` entry.
// ---------------------------------------------------------------------

/// A 2x2 mesh prologue plus one AHB initiator and one memory; `config`
/// is spliced in whole so each test controls the partition knobs.
fn assignment_scenario(config: &str) -> String {
    format!(
        "[topology]\nkind = \"mesh\"\nwidth = 2\nheight = 2\n\n[config]\n{config}\n\
         [[initiator]]\nname = \"m\"\nsocket = \"ahb\"\ncmd = \"read 0x0 1x4\"\n\n\
         [[memory]]\nname = \"a\"\nbase = 0\nend = 0x1000\nlatency = 1\n"
    )
}

#[test]
fn non_contiguous_assignment_reports_line_and_column() {
    let e = parse_err(&assignment_scenario("assignment = [0, 1, 0, 1]\n"));
    // Line 7 is the assignment entry; column 14 its value.
    assert_eq!((e.line, e.column), (7, 14));
    assert!(
        matches!(e.kind, ParseErrorKind::BadValue { ref key, ref reason }
            if key == "assignment" && reason.contains("contiguous")),
        "{:?}",
        e.kind
    );
}

#[test]
fn assignment_with_wrong_switch_count_is_rejected() {
    let e = parse_err(&assignment_scenario("assignment = [0, 0, 1]\n"));
    assert_eq!((e.line, e.column), (7, 14));
    assert!(
        matches!(e.kind, ParseErrorKind::BadValue { ref key, ref reason }
            if key == "assignment" && reason.contains("lists 3 switches, topology has 4")),
        "{:?}",
        e.kind
    );
}

#[test]
fn assignment_region_out_of_range_is_rejected() {
    // `shards = 2` fixes the region count; region 7 cannot exist.
    let e = parse_err(&assignment_scenario(
        "shards = 2\nassignment = [0, 0, 1, 7]\n",
    ));
    assert_eq!((e.line, e.column), (8, 14));
    assert!(
        matches!(e.kind, ParseErrorKind::BadValue { ref key, ref reason }
            if key == "assignment"
                && reason.contains("switch 3 assigned to region 7, but the run has 2 regions")),
        "{:?}",
        e.kind
    );
}

#[test]
fn assignment_disagreeing_with_shards_is_rejected() {
    // The map uses 2 regions but the `shards` knob demands 3.
    let e = parse_err(&assignment_scenario(
        "shards = 3\nassignment = [0, 0, 1, 1]\n",
    ));
    assert_eq!((e.line, e.column), (8, 14));
    assert!(
        matches!(e.kind, ParseErrorKind::BadValue { ref key, ref reason }
            if key == "assignment"
                && reason.contains("uses 2 regions, but the run has 3 regions")),
        "{:?}",
        e.kind
    );
}

/// A valid explicit assignment is a stepping knob, not a semantic one:
/// the run must stay record-for-record bit-identical to the same
/// scenario auto-partitioned, and to single-thread dense stepping.
#[test]
fn explicit_assignment_is_bit_identical_to_auto_partition() {
    let body = "[[initiator]]\nname = \"g0\"\nsocket = \"ahb\"\nkind = \"zipf\"\nseed = 11\n\
         commands = 60\nexponent_milli = 1500\n\n\
         [[initiator]]\nname = \"g1\"\nsocket = \"ahb\"\nkind = \"bursty\"\nseed = 12\n\
         commands = 60\nburst_len = 4\nidle_gap = 30\n\n\
         [[memory]]\nname = \"a\"\nbase = 0\nend = 0x1000\nlatency = 4\n\n\
         [[memory]]\nname = \"b\"\nbase = 0x1000\nend = 0x2000\nlatency = 2\n";
    let prologue = "[topology]\nkind = \"mesh\"\nwidth = 2\nheight = 2\n\n";
    let explicit = ScenarioSpec::from_text(&format!(
        "{prologue}[config]\nshards = 2\nassignment = [0, 0, 0, 1]\n\n{body}"
    ))
    .expect("explicit assignment parses");
    let auto = ScenarioSpec::from_text(&format!("{prologue}[config]\nshards = 2\n\n{body}"))
        .expect("auto partition parses");
    let backend = Backend::noc();
    let dense = run(&auto, &backend, StepMode::Dense).expect("dense runs");
    assert!(dense.0, "dense must drain");
    for (label, spec) in [("auto", &auto), ("explicit", &explicit)] {
        let sharded = run(spec, &backend, StepMode::Sharded { threads: 0 }).expect("sharded runs");
        assert_eq!(
            dense, sharded,
            "{label}: sharded run diverges from the dense reference"
        );
    }
}

#[test]
fn bad_integer_and_unterminated_string_are_syntax_errors() {
    let e = parse_err("[[memory]]\nname = \"a\"\nbase = 0xZZ\nend = 16\nlatency = 1\n");
    assert_eq!(e.line, 3);
    assert!(matches!(e.kind, ParseErrorKind::Syntax(_)));
    let e = parse_err("[[initiator]]\nname = \"m\nsocket = \"ahb\"\n");
    assert_eq!(e.line, 2);
    assert!(matches!(e.kind, ParseErrorKind::Syntax(_)));
}

#[test]
fn unknown_target_kind_reports_its_line() {
    let text = "[[target]]\nname = \"t\"\nkind = \"dimm\"\nbase = 0\nend = 0x100\nlatency = 1\n";
    let e = parse_err(text);
    assert_eq!(e.line, 3);
    assert!(
        matches!(e.kind, ParseErrorKind::BadValue { ref key, ref reason }
            if key == "kind" && reason.contains("dimm")),
        "{:?}",
        e.kind
    );
}

#[test]
fn target_block_missing_latency_points_at_the_section() {
    let e = parse_err("[[target]]\nname = \"t\"\nkind = \"service\"\nbase = 0\nend = 0x100\n");
    assert_eq!(e.line, 1);
    assert_eq!(
        e.kind,
        ParseErrorKind::MissingKey {
            section: "target".into(),
            key: "latency".into()
        }
    );
}

#[test]
fn target_param_on_wrong_kind_is_rejected() {
    // `bank_stagger` belongs to AXI slaves, not service blocks.
    let text = "[[target]]\nname = \"t\"\nkind = \"service\"\nbase = 0\nend = 0x100\nlatency = 1\nbank_stagger = 2\n";
    let e = parse_err(text);
    assert_eq!(e.line, 7);
    assert_eq!(e.kind, ParseErrorKind::UnknownKey("bank_stagger".into()));
    // …and on a plain memory, `kind`-specific params are equally unknown.
    let text = "[[memory]]\nname = \"t\"\nbase = 0\nend = 0x100\nlatency = 1\nwrite_latency = 3\n";
    let e = parse_err(text);
    assert_eq!(e.line, 6);
    assert_eq!(e.kind, ParseErrorKind::UnknownKey("write_latency".into()));
}

#[test]
fn non_boolean_exclusive_flag_is_rejected() {
    let text = "[[target]]\nname = \"t\"\nkind = \"service\"\nbase = 0\nend = 0x100\nlatency = 1\nexclusive = 1\n";
    let e = parse_err(text);
    assert_eq!(e.line, 7);
    assert!(
        matches!(e.kind, ParseErrorKind::BadValue { ref key, ref reason }
            if key == "exclusive" && reason.contains("true or false")),
        "{:?}",
        e.kind
    );
}

#[test]
fn exclusive_service_target_on_bus_backend_is_the_typed_build_error() {
    // Parsing succeeds — whether a backend can model a target kind is
    // the backend's decision, made at compile time with a typed error.
    let text = "[[initiator]]\nname = \"m\"\nsocket = \"ahb\"\ncmd = \"read_ex 0x40 1x4\"\ncmd = \"write_ex 0x40 1x4 seed=1\"\n\n[[target]]\nname = \"sem\"\nkind = \"service\"\nbase = 0\nend = 0x1000\nlatency = 1\nwrite_latency = 2\nexclusive = true\n";
    let spec = ScenarioSpec::from_text(text).expect("exclusive service targets parse");
    match spec.build(&Backend::bus()) {
        Err(ScenarioError::UnsupportedTarget {
            backend,
            target,
            kind,
        }) => {
            assert_eq!(backend, "bus");
            assert_eq!(target, "sem");
            assert_eq!(kind, "service+exclusive");
        }
        other => panic!("expected UnsupportedTarget, got {:?}", other.map(|_| ())),
    }
    // The NoC and the bridged crossbar both model it.
    assert!(spec.build(&Backend::noc()).is_ok());
    assert!(spec.build(&Backend::bridged()).is_ok());
}

#[test]
fn sync_traffic_to_a_plain_service_block_is_a_validation_error() {
    // Without the exclusive flag a register file rejects exclusive and
    // locked opcodes at validation time, before anything is built.
    let text = "[[initiator]]\nname = \"m\"\nsocket = \"ahb\"\ncmd = \"read_ex 0x40 1x4\"\n\n[[target]]\nname = \"regs\"\nkind = \"service\"\nbase = 0\nend = 0x1000\nlatency = 1\n";
    let spec = ScenarioSpec::from_text(text).expect("parses");
    match spec.validate() {
        Err(ScenarioError::SyncUnsupported {
            initiator, target, ..
        }) => {
            assert_eq!(initiator, "m");
            assert_eq!(target, "regs");
        }
        other => panic!("expected SyncUnsupported, got {other:?}"),
    }
}

#[test]
fn clocked_spec_on_bus_backend_is_the_typed_build_error() {
    // Parsing succeeds — rejecting divided clocks is the *backend's*
    // decision, made at compile time with the typed error.
    let text = "[[initiator]]\nname = \"m\"\nsocket = \"ahb\"\nclock_divisor = 2\ncmd = \"read 0x0 1x4\"\n\n[[memory]]\nname = \"mem\"\nbase = 0\nend = 0x1000\nlatency = 1\n";
    let spec = ScenarioSpec::from_text(text).expect("clocked specs parse");
    for backend in [Backend::bus(), Backend::bridged()] {
        match spec.build(&backend) {
            Err(ScenarioError::UnsupportedClock {
                endpoint, divisor, ..
            }) => {
                assert_eq!(endpoint, "m");
                assert_eq!(divisor, 2);
            }
            other => panic!("expected UnsupportedClock, got {:?}", other.map(|_| ())),
        }
    }
    assert!(spec.build(&Backend::noc()).is_ok());
    // The same spec inside a sweep point surfaces the same typed error
    // from the sweep runner's up-front compile check.
    let sweep_text = format!("[[sweep.point]]\nlabel = \"p\"\nbackend = \"bus\"\n\n{text}");
    let sweep = Sweep::from_text(&sweep_text).expect("sweep parses");
    assert!(matches!(
        sweep.run(),
        Err(ScenarioError::UnsupportedClock { .. })
    ));
}

#[test]
fn errors_display_and_propagate_like_std_errors() {
    // `?`-friendly: both error types implement std::error::Error with
    // useful Display text, and ScenarioError::Parse exposes its source.
    fn through_question_mark(text: &str) -> Result<ScenarioSpec, Box<dyn std::error::Error>> {
        Ok(ScenarioSpec::from_text(text)?)
    }
    let err = through_question_mark("[topology]\nkind = \"floor\"\n").unwrap_err();
    let msg = err.to_string();
    assert!(msg.contains("line 2"), "{msg}");
    assert!(msg.contains("floor"), "{msg}");
    let scenario_err = err
        .downcast::<ScenarioError>()
        .expect("typed error survives");
    let source = std::error::Error::source(scenario_err.as_ref()).expect("Parse has a source");
    assert!(source.downcast_ref::<ParseError>().is_some());
}

// ---------------------------------------------------------------------
// Negative parses for the generated program kinds.
// ---------------------------------------------------------------------

#[test]
fn bad_program_seed_is_rejected_in_place() {
    let e = parse_err(
        "[[initiator]]\nname = \"m\"\nsocket = \"ahb\"\nkind = \"bursty\"\nseed = \"lucky\"\ncommands = 10\nburst_len = 4\nidle_gap = 10\n",
    );
    assert_eq!(e.line, 5);
    assert!(
        matches!(e.kind, ParseErrorKind::BadValue { ref key, .. } if key == "seed"),
        "{:?}",
        e.kind
    );
}

#[test]
fn missing_trace_path_points_at_the_section() {
    let e = parse_err("[[initiator]]\nname = \"m\"\nsocket = \"ahb\"\nkind = \"trace\"\n");
    assert_eq!(e.line, 1);
    assert_eq!(
        e.kind,
        ParseErrorKind::MissingKey {
            section: "initiator".into(),
            key: "trace_file".into()
        }
    );
}

#[test]
fn zipf_exponent_out_of_range_is_rejected_in_place() {
    let e = parse_err(
        "[[initiator]]\nname = \"m\"\nsocket = \"ahb\"\nkind = \"zipf\"\nseed = 7\ncommands = 10\nexponent_milli = 9000\n",
    );
    assert_eq!(e.line, 7);
    assert!(
        matches!(e.kind, ParseErrorKind::BadValue { ref key, .. } if key == "exponent_milli"),
        "{:?}",
        e.kind
    );
}

#[test]
fn cmd_lines_conflict_with_a_generated_kind() {
    let e = parse_err(
        "[[initiator]]\nname = \"m\"\nsocket = \"ahb\"\nkind = \"bursty\"\nseed = 7\ncommands = 10\nburst_len = 4\nidle_gap = 10\ncmd = \"read 0x0 1x4\"\n",
    );
    assert_eq!((e.line, e.column), (9, 1));
    assert!(
        matches!(e.kind, ParseErrorKind::Syntax(ref s) if s.contains("conflict")),
        "{:?}",
        e.kind
    );
}

#[test]
fn unknown_program_kind_is_rejected_in_place() {
    let e = parse_err("[[initiator]]\nname = \"m\"\nsocket = \"ahb\"\nkind = \"markov\"\n");
    assert_eq!(e.line, 4);
    assert!(
        matches!(e.kind, ParseErrorKind::BadValue { ref key, ref reason }
            if key == "kind" && reason.contains("markov")),
        "{:?}",
        e.kind
    );
}

#[test]
fn unknown_discipline_is_rejected_in_place() {
    let e = parse_err(
        "[[initiator]]\nname = \"m\"\nsocket = \"ahb\"\nkind = \"zipf\"\nseed = 7\ncommands = 10\nexponent_milli = 800\ndiscipline = \"ajar\"\n",
    );
    assert_eq!(e.line, 8);
    assert!(
        matches!(e.kind, ParseErrorKind::BadValue { ref key, ref reason }
            if key == "discipline" && reason.contains("ajar")),
        "{:?}",
        e.kind
    );
}

#[test]
fn shape_keys_on_an_explicit_program_are_unknown() {
    // `read_pct` only means something for the generated kinds.
    let e = parse_err(
        "[[initiator]]\nname = \"m\"\nsocket = \"ahb\"\ncmd = \"read 0x0 1x4\"\nread_pct = 50\n",
    );
    assert_eq!(e.line, 5);
    assert_eq!(e.kind, ParseErrorKind::UnknownKey("read_pct".into()));
}

#[test]
fn streams_beyond_the_socket_limit_fail_validation() {
    // Parses fine, but AHB has a single stream: build-time validation
    // rejects it with the typed BadProgram error, not a panic downstream.
    let text = "[[initiator]]\nname = \"m\"\nsocket = \"ahb\"\nkind = \"zipf\"\nseed = 7\ncommands = 10\nexponent_milli = 800\nstreams = 2\n\n[[memory]]\nname = \"mem\"\nbase = 0\nend = 0x1000\nlatency = 1\n";
    let spec = ScenarioSpec::from_text(text).unwrap();
    match spec.build(&noc_scenario::Backend::noc()) {
        Err(ScenarioError::BadProgram { initiator, .. }) => assert_eq!(initiator, "m"),
        other => panic!("expected BadProgram, got {:?}", other.map(|_| ())),
    }
}
