//! The declarative scenario API: validation errors, automatic address
//! derivation, and the headline claim — one spec, three interconnects,
//! identical per-master completion data.

use noc_protocols::{Program, SocketCommand};
use noc_scenario::{
    Backend, InitiatorSpec, MemorySpec, ScenarioError, ScenarioSpec, SocketSpec, StepMode,
    TopologySpec,
};
use noc_transaction::BurstKind;

fn tiny_program(base: u64) -> Program {
    vec![
        SocketCommand::write(base + 0x40, 4, 0xFEED).with_burst(BurstKind::Incr, 4),
        SocketCommand::read(base + 0x40, 4).with_burst(BurstKind::Incr, 4),
    ]
}

#[test]
fn empty_scenario_rejected() {
    assert_eq!(ScenarioSpec::new().validate(), Err(ScenarioError::Empty));
    // initiators without memories (and vice versa) are also empty
    let only_master =
        ScenarioSpec::new().initiator(InitiatorSpec::new("cpu", SocketSpec::Ahb, tiny_program(0)));
    assert_eq!(only_master.validate(), Err(ScenarioError::Empty));
    let only_memory = ScenarioSpec::new().memory(MemorySpec::new("mem", 0x0, 0x1000, 2));
    assert_eq!(only_memory.validate(), Err(ScenarioError::Empty));
}

#[test]
fn duplicate_endpoint_names_rejected() {
    let spec = ScenarioSpec::new()
        .initiator(InitiatorSpec::new("cpu", SocketSpec::Ahb, tiny_program(0)))
        .initiator(InitiatorSpec::new("cpu", SocketSpec::Ahb, tiny_program(0)))
        .memory(MemorySpec::new("mem", 0x0, 0x1000, 2));
    assert_eq!(
        spec.validate(),
        Err(ScenarioError::DuplicateName { name: "cpu".into() })
    );
    // names are unique across initiators AND memories
    let spec = ScenarioSpec::new()
        .initiator(InitiatorSpec::new("mem", SocketSpec::Ahb, tiny_program(0)))
        .memory(MemorySpec::new("mem", 0x0, 0x1000, 2));
    assert_eq!(
        spec.validate(),
        Err(ScenarioError::DuplicateName { name: "mem".into() })
    );
}

#[test]
fn overlapping_memory_regions_rejected() {
    let spec = ScenarioSpec::new()
        .initiator(InitiatorSpec::new("cpu", SocketSpec::Ahb, tiny_program(0)))
        .memory(MemorySpec::new("a", 0x0, 0x1000, 2))
        .memory(MemorySpec::new("b", 0x800, 0x2000, 2));
    assert_eq!(
        spec.validate(),
        Err(ScenarioError::OverlappingRegions {
            a: "a".into(),
            b: "b".into()
        })
    );
}

#[test]
fn empty_memory_region_rejected() {
    let spec = ScenarioSpec::new()
        .initiator(InitiatorSpec::new("cpu", SocketSpec::Ahb, tiny_program(0)))
        .memory(MemorySpec::new("mem", 0x1000, 0x1000, 2));
    assert_eq!(
        spec.validate(),
        Err(ScenarioError::EmptyRegion { name: "mem".into() })
    );
}

#[test]
fn unmapped_command_address_rejected() {
    let spec = ScenarioSpec::new()
        .initiator(InitiatorSpec::new(
            "cpu",
            SocketSpec::Ahb,
            tiny_program(0x8000),
        ))
        .memory(MemorySpec::new("mem", 0x0, 0x1000, 2));
    assert!(matches!(
        spec.validate(),
        Err(ScenarioError::UnmappedAddress { .. })
    ));
}

#[test]
fn bad_topology_rejected() {
    let spec = ScenarioSpec::new()
        .initiator(InitiatorSpec::new("cpu", SocketSpec::Ahb, tiny_program(0)))
        .memory(MemorySpec::new("mem", 0x0, 0x1000, 2))
        .with_topology(TopologySpec::Custom {
            switches: 2,
            links: vec![(0, 1)],
            placement: vec![0], // two endpoints declared, one placed
        });
    assert!(matches!(
        spec.validate(),
        Err(ScenarioError::BadTopology { .. })
    ));
}

#[test]
fn address_map_derived_from_declaration_order() {
    let spec = ScenarioSpec::new()
        .initiator(InitiatorSpec::new("cpu", SocketSpec::Ahb, tiny_program(0)))
        .initiator(InitiatorSpec::new(
            "dma",
            SocketSpec::axi(),
            tiny_program(0),
        ))
        .memory(MemorySpec::new("lo", 0x0, 0x1000, 2))
        .memory(MemorySpec::new("hi", 0x1000, 0x2000, 2));
    let map = spec.address_map().expect("valid");
    // initiators take nodes 0..2, memories 2..4 in declaration order
    assert_eq!(map.decode(0x10).unwrap().index(), 2);
    assert_eq!(map.decode(0x1800).unwrap().index(), 3);
}

/// A race-free mixed-protocol scenario: each master owns a private
/// memory region, so the completion data is independent of interconnect
/// timing.
fn race_free_spec() -> ScenarioSpec {
    let program = |base: u64| -> Program {
        (0..6)
            .flat_map(|i| {
                let addr = base + 0x100 + i * 0x40;
                vec![
                    SocketCommand::write(addr, 4, 0xD00D ^ i).with_burst(BurstKind::Incr, 4),
                    SocketCommand::read(addr, 4).with_burst(BurstKind::Incr, 4),
                ]
            })
            .collect()
    };
    ScenarioSpec::new()
        .initiator(InitiatorSpec::new(
            "cpu(AHB)",
            SocketSpec::Ahb,
            program(0x0),
        ))
        .initiator(InitiatorSpec::new(
            "io(BVCI)",
            SocketSpec::bvci(),
            program(0x1000),
        ))
        .initiator(InitiatorSpec::new(
            "display(STRM)",
            SocketSpec::strm(),
            program(0x2000),
        ))
        .memory(MemorySpec::new("m0", 0x0, 0x1000, 4))
        .memory(MemorySpec::new("m1", 0x1000, 0x2000, 2))
        .memory(MemorySpec::new("m2", 0x2000, 0x3000, 1))
}

#[test]
fn completion_logs_are_backend_invariant() {
    // One record, keyed for comparison: (program index, opcode, addr, data).
    type RecordKey = (usize, u8, u64, Vec<u8>);
    let spec = race_free_spec();
    let backends = [Backend::noc(), Backend::bridged(), Backend::bus()];
    let mut all_logs: Vec<Vec<(String, Vec<RecordKey>)>> = Vec::new();
    for backend in &backends {
        let mut sim = spec.build(backend).expect("valid spec");
        assert!(sim.run_until(500_000), "{backend} must drain");
        let logs = sim
            .logs()
            .iter()
            .map(|(name, log)| {
                // Key records by program index: completion *timing* (and
                // hence log order for sockets with posted writes) is
                // backend-specific, the per-command result is not.
                let mut records: Vec<RecordKey> = log
                    .records()
                    .iter()
                    .map(|r| (r.index, r.opcode as u8, r.addr, r.data.clone()))
                    .collect();
                records.sort_unstable_by_key(|r| r.0);
                (name.to_string(), records)
            })
            .collect();
        all_logs.push(logs);
    }
    // Record-for-record agreement: same masters, same order, same
    // opcode/address/data on every interconnect.
    let noc = &all_logs[0];
    assert_eq!(noc.len(), 3);
    assert!(noc.iter().all(|(_, records)| records.len() == 12));
    for (i, backend) in backends.iter().enumerate().skip(1) {
        assert_eq!(
            noc, &all_logs[i],
            "completion logs diverge between noc and {backend}"
        );
    }
}

/// Record-for-record backend invariance for *target* protocols,
/// mirroring [`completion_logs_are_backend_invariant`] for the two
/// target-side corpus files: the spec declares an AXI slave, a service
/// block and a memory (or an exclusive semaphore block), and every
/// backend that can model the declaration must produce the same
/// per-command opcode/address/data/status — the slave half of the
/// paper's VC-neutrality claim. Backends that cannot model a target
/// kind must say so with the typed error, never silently diverge.
#[test]
fn target_protocol_logs_are_backend_invariant() {
    // (program index, opcode, addr, data, status) — status included:
    // exclusive verdicts are the whole point of the semaphore target.
    type RecordKey = (usize, u8, u64, Vec<u8>, u8);
    /// One backend's observation: (backend label, per-master records).
    type BackendLogs = (String, Vec<(String, Vec<RecordKey>)>);
    let corpus = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../../tests/scenarios");
    for file in ["services.scn", "exclusive_locks.scn"] {
        let text = std::fs::read_to_string(corpus.join(file)).expect("corpus file exists");
        let specs: Vec<(String, ScenarioSpec)> =
            match noc_scenario::parse_document(&text).expect("corpus parses") {
                noc_scenario::Document::Scenario(spec) => vec![("-".into(), spec)],
                noc_scenario::Document::Sweep(sweep) => sweep
                    .points()
                    .iter()
                    .map(|p| (p.label.clone(), p.spec.clone()))
                    .collect(),
            };
        for (label, spec) in specs {
            let mut per_backend: Vec<BackendLogs> = Vec::new();
            for backend in [Backend::noc(), Backend::bridged(), Backend::bus()] {
                let mut sim = match spec.build(&backend) {
                    Ok(sim) => sim,
                    Err(ScenarioError::UnsupportedTarget { backend: b, .. }) => {
                        // Only the bus may reject, and only over the
                        // exclusive semaphore service block.
                        assert_eq!(b, "bus", "{file}/{label}");
                        assert!(
                            matches!(backend, Backend::Bus(_)),
                            "{file}/{label}: wrong backend rejected"
                        );
                        continue;
                    }
                    Err(e) => panic!("{file}/{label}: {backend} failed to compile: {e}"),
                };
                assert!(sim.run_until(2_000_000), "{file}/{label}: {backend} drains");
                let logs = sim
                    .logs()
                    .iter()
                    .map(|(name, log)| {
                        let mut records: Vec<RecordKey> = log
                            .records()
                            .iter()
                            .map(|r| {
                                (
                                    r.index,
                                    r.opcode as u8,
                                    r.addr,
                                    r.data.clone(),
                                    r.status as u8,
                                )
                            })
                            .collect();
                        records.sort_unstable_by_key(|r| r.0);
                        (name.to_string(), records)
                    })
                    .collect();
                per_backend.push((backend.label().to_owned(), logs));
            }
            assert!(
                per_backend.len() >= 2,
                "{file}/{label}: at least two backends must model the targets"
            );
            let (ref_label, reference) = &per_backend[0];
            for (other_label, other) in &per_backend[1..] {
                assert_eq!(
                    reference, other,
                    "{file}/{label}: completion logs diverge between {ref_label} and {other_label}"
                );
            }
        }
    }
}

#[test]
fn reports_carry_master_names_and_fabric_stats() {
    let spec = race_free_spec();
    let mut sim = spec.build(&Backend::noc()).expect("valid spec");
    assert!(sim.run_until(500_000));
    let report = sim.report();
    assert_eq!(report.backend, "noc");
    assert!(report.fabric.is_some(), "NoC backend reports fabric stats");
    assert!(
        report.master("display").is_some(),
        "lookup by name fragment"
    );
    assert_eq!(report.master("display").unwrap().completions, 12);
    let mut bus = spec.build(&Backend::bus()).expect("valid spec");
    assert!(bus.run_until(500_000));
    assert!(bus.report().fabric.is_none(), "bus has no fabric");
    assert_eq!(bus.report().master("io").unwrap().completions, 12);
}

#[test]
fn topology_specs_all_run() {
    let spec = race_free_spec();
    for topology in [
        TopologySpec::Crossbar,
        TopologySpec::Ring { switches: 3 },
        TopologySpec::Mesh {
            width: 2,
            height: 2,
        },
        TopologySpec::Custom {
            switches: 2,
            links: vec![(0, 1)],
            placement: vec![0, 0, 1, 0, 1, 1],
        },
    ] {
        let spec = spec.clone().with_topology(topology.clone());
        let mut sim = spec.build(&Backend::noc()).expect("valid spec");
        assert!(sim.run_until(500_000), "{topology:?} must drain");
        assert_eq!(sim.report().total_completions(), 36, "{topology:?}");
    }
}

// ---------------------------------------------------------------------
// Quiescence-aware (horizon) stepping: equivalence and clock handling.
// ---------------------------------------------------------------------

/// Everything observable about a finished run: final cycle, drained
/// flag, and every completion record verbatim (opcode, address, data,
/// status, stream AND both timestamps) per master, plus the merged
/// functional fingerprint.
fn observe(
    spec: &ScenarioSpec,
    backend: &Backend,
    mode: StepMode,
    budget: u64,
) -> (
    u64,
    bool,
    Vec<(String, Vec<noc_protocols::CompletionRecord>)>,
    noc_transaction::Fingerprint,
) {
    let mut sim = spec.build(backend).expect("valid spec");
    let drained = sim.run_until_with(budget, mode);
    let logs = sim
        .logs()
        .iter()
        .map(|(name, log)| (name.to_string(), log.records().to_vec()))
        .collect();
    (sim.now(), drained, logs, sim.report().system_fingerprint())
}

/// The headline invariant of quiescence-aware stepping: on every
/// backend, jumping across provably-dead gaps yields the same final
/// cycle count and record-for-record identical completion logs —
/// timestamps included — as polling every cycle.
#[test]
fn horizon_stepping_is_record_identical_to_dense_on_all_backends() {
    use noc_workloads::{SetTop, SetTopConfig};
    for seed in [7u64, 2005] {
        // The full mixed-protocol set-top system: seven sockets, shared
        // memories (racy interleavings), idle gaps between commands.
        let spec = SetTop::new(SetTopConfig::new(8, seed)).spec();
        for backend in [Backend::noc(), Backend::bridged(), Backend::bus()] {
            let dense = observe(&spec, &backend, StepMode::Dense, 1_000_000);
            let horizon = observe(&spec, &backend, StepMode::Horizon, 1_000_000);
            assert!(dense.1, "{backend} dense must drain (seed {seed})");
            assert_eq!(
                dense, horizon,
                "dense and horizon stepping diverge on {backend} (seed {seed})"
            );
        }
    }
}

/// Sparse workloads (the low-injection-rate regime horizon stepping
/// exists for) must stay bit-identical while skipping almost all cycles.
#[test]
fn horizon_stepping_matches_dense_on_sparse_workloads() {
    let mut spec = race_free_spec();
    for ini in &mut spec.initiators {
        for (i, cmd) in ini.program.explicit_mut().unwrap().iter_mut().enumerate() {
            cmd.delay_before = 500 + (i as u32 % 7) * 311;
        }
    }
    for backend in [Backend::noc(), Backend::bridged(), Backend::bus()] {
        let dense = observe(&spec, &backend, StepMode::Dense, 2_000_000);
        let horizon = observe(&spec, &backend, StepMode::Horizon, 2_000_000);
        assert!(dense.1, "{backend} dense must drain");
        assert_eq!(dense, horizon, "sparse divergence on {backend}");
    }
}

/// Mixed endpoint clocks: the horizon computation must respect every
/// divided clock's edge grid (via the kernel `ClockSet`), so divided
/// NIUs stay bit-identical too.
#[test]
fn horizon_stepping_matches_dense_under_divided_clocks() {
    let mut spec = race_free_spec();
    spec.initiators[0].clock_divisor = 2;
    spec.initiators[1].clock_divisor = 3;
    spec.memories[1].clock_divisor = 2;
    for ini in &mut spec.initiators {
        for (i, cmd) in ini.program.explicit_mut().unwrap().iter_mut().enumerate() {
            cmd.delay_before = 50 + (i as u32 % 5) * 97;
        }
    }
    let backend = Backend::noc();
    let dense = observe(&spec, &backend, StepMode::Dense, 2_000_000);
    let horizon = observe(&spec, &backend, StepMode::Horizon, 2_000_000);
    assert!(dense.1, "clocked dense must drain");
    assert_eq!(dense, horizon, "divided-clock divergence");
}

/// The baselines have no notion of divided endpoint clocks; compiling a
/// clocked spec to them must fail loudly with the typed error, not
/// silently retime the scenario.
#[test]
fn clocked_specs_rejected_on_baseline_backends() {
    let mut spec = race_free_spec();
    spec.initiators[2].clock_divisor = 4;
    assert_eq!(
        spec.build_bus(Default::default())
            .err()
            .map(|e| e.to_string()),
        Some(
            "bus backend cannot model \"display(STRM)\"'s clk/4 \
             (baselines run everything on the base clock)"
                .to_string()
        )
    );
    assert!(matches!(
        spec.build_bridged(Default::default()),
        Err(ScenarioError::UnsupportedClock {
            backend: "bridged",
            divisor: 4,
            ..
        })
    ));
    // The NoC models divided clocks natively: same spec compiles.
    assert!(spec.build(&Backend::noc()).is_ok());
    // Divided *memory* clocks are equally rejected.
    let mut spec = race_free_spec();
    spec.memories[0].clock_divisor = 2;
    assert!(matches!(
        spec.build(&Backend::bus()),
        Err(ScenarioError::UnsupportedClock { backend: "bus", .. })
    ));
}

/// The parallel sweep runner preserves declaration order and produces
/// exactly what the sequential path produces.
#[test]
fn sweep_parallel_matches_sequential_in_order() {
    let run = |threads: usize| {
        let sweep = noc_scenario::Sweep::over(
            [(3usize, 11u64), (4, 22), (5, 33), (6, 44), (2, 55), (3, 66)],
            |(cmds, seed)| {
                let spec =
                    noc_workloads::SetTop::new(noc_workloads::SetTopConfig::new(cmds, seed)).spec();
                (format!("{cmds}cmds/s{seed}"), spec, Backend::noc())
            },
        )
        .with_max_cycles(1_000_000)
        .with_threads(threads);
        sweep
            .run()
            .expect("set-top specs are consistent")
            .into_iter()
            .map(|r| {
                (
                    r.label,
                    r.report.cycles,
                    r.report.total_completions(),
                    r.report.system_fingerprint(),
                )
            })
            .collect::<Vec<_>>()
    };
    let sequential = run(1);
    let parallel = run(4);
    assert_eq!(sequential.len(), 6);
    assert!(sequential
        .iter()
        .zip([
            "3cmds/s11",
            "4cmds/s22",
            "5cmds/s33",
            "6cmds/s44",
            "2cmds/s55",
            "3cmds/s66"
        ])
        .all(|(r, l)| r.0 == l));
    assert_eq!(sequential, parallel);
}
