//! The declarative scenario API: validation errors, automatic address
//! derivation, and the headline claim — one spec, three interconnects,
//! identical per-master completion data.

use noc_protocols::{Program, SocketCommand};
use noc_scenario::{
    Backend, InitiatorSpec, MemorySpec, ScenarioError, ScenarioSpec, SocketSpec, TopologySpec,
};
use noc_transaction::BurstKind;

fn tiny_program(base: u64) -> Program {
    vec![
        SocketCommand::write(base + 0x40, 4, 0xFEED).with_burst(BurstKind::Incr, 4),
        SocketCommand::read(base + 0x40, 4).with_burst(BurstKind::Incr, 4),
    ]
}

#[test]
fn empty_scenario_rejected() {
    assert_eq!(ScenarioSpec::new().validate(), Err(ScenarioError::Empty));
    // initiators without memories (and vice versa) are also empty
    let only_master =
        ScenarioSpec::new().initiator(InitiatorSpec::new("cpu", SocketSpec::Ahb, tiny_program(0)));
    assert_eq!(only_master.validate(), Err(ScenarioError::Empty));
    let only_memory = ScenarioSpec::new().memory(MemorySpec::new("mem", 0x0, 0x1000, 2));
    assert_eq!(only_memory.validate(), Err(ScenarioError::Empty));
}

#[test]
fn duplicate_endpoint_names_rejected() {
    let spec = ScenarioSpec::new()
        .initiator(InitiatorSpec::new("cpu", SocketSpec::Ahb, tiny_program(0)))
        .initiator(InitiatorSpec::new("cpu", SocketSpec::Ahb, tiny_program(0)))
        .memory(MemorySpec::new("mem", 0x0, 0x1000, 2));
    assert_eq!(
        spec.validate(),
        Err(ScenarioError::DuplicateName { name: "cpu".into() })
    );
    // names are unique across initiators AND memories
    let spec = ScenarioSpec::new()
        .initiator(InitiatorSpec::new("mem", SocketSpec::Ahb, tiny_program(0)))
        .memory(MemorySpec::new("mem", 0x0, 0x1000, 2));
    assert_eq!(
        spec.validate(),
        Err(ScenarioError::DuplicateName { name: "mem".into() })
    );
}

#[test]
fn overlapping_memory_regions_rejected() {
    let spec = ScenarioSpec::new()
        .initiator(InitiatorSpec::new("cpu", SocketSpec::Ahb, tiny_program(0)))
        .memory(MemorySpec::new("a", 0x0, 0x1000, 2))
        .memory(MemorySpec::new("b", 0x800, 0x2000, 2));
    assert_eq!(
        spec.validate(),
        Err(ScenarioError::OverlappingRegions {
            a: "a".into(),
            b: "b".into()
        })
    );
}

#[test]
fn empty_memory_region_rejected() {
    let spec = ScenarioSpec::new()
        .initiator(InitiatorSpec::new("cpu", SocketSpec::Ahb, tiny_program(0)))
        .memory(MemorySpec::new("mem", 0x1000, 0x1000, 2));
    assert_eq!(
        spec.validate(),
        Err(ScenarioError::EmptyRegion { name: "mem".into() })
    );
}

#[test]
fn unmapped_command_address_rejected() {
    let spec = ScenarioSpec::new()
        .initiator(InitiatorSpec::new(
            "cpu",
            SocketSpec::Ahb,
            tiny_program(0x8000),
        ))
        .memory(MemorySpec::new("mem", 0x0, 0x1000, 2));
    assert!(matches!(
        spec.validate(),
        Err(ScenarioError::UnmappedAddress { .. })
    ));
}

#[test]
fn bad_topology_rejected() {
    let spec = ScenarioSpec::new()
        .initiator(InitiatorSpec::new("cpu", SocketSpec::Ahb, tiny_program(0)))
        .memory(MemorySpec::new("mem", 0x0, 0x1000, 2))
        .with_topology(TopologySpec::Custom {
            switches: 2,
            links: vec![(0, 1)],
            placement: vec![0], // two endpoints declared, one placed
        });
    assert!(matches!(
        spec.validate(),
        Err(ScenarioError::BadTopology { .. })
    ));
}

#[test]
fn address_map_derived_from_declaration_order() {
    let spec = ScenarioSpec::new()
        .initiator(InitiatorSpec::new("cpu", SocketSpec::Ahb, tiny_program(0)))
        .initiator(InitiatorSpec::new(
            "dma",
            SocketSpec::axi(),
            tiny_program(0),
        ))
        .memory(MemorySpec::new("lo", 0x0, 0x1000, 2))
        .memory(MemorySpec::new("hi", 0x1000, 0x2000, 2));
    let map = spec.address_map().expect("valid");
    // initiators take nodes 0..2, memories 2..4 in declaration order
    assert_eq!(map.decode(0x10).unwrap().index(), 2);
    assert_eq!(map.decode(0x1800).unwrap().index(), 3);
}

/// A race-free mixed-protocol scenario: each master owns a private
/// memory region, so the completion data is independent of interconnect
/// timing.
fn race_free_spec() -> ScenarioSpec {
    let program = |base: u64| -> Program {
        (0..6)
            .flat_map(|i| {
                let addr = base + 0x100 + i * 0x40;
                vec![
                    SocketCommand::write(addr, 4, 0xD00D ^ i).with_burst(BurstKind::Incr, 4),
                    SocketCommand::read(addr, 4).with_burst(BurstKind::Incr, 4),
                ]
            })
            .collect()
    };
    ScenarioSpec::new()
        .initiator(InitiatorSpec::new(
            "cpu(AHB)",
            SocketSpec::Ahb,
            program(0x0),
        ))
        .initiator(InitiatorSpec::new(
            "io(BVCI)",
            SocketSpec::bvci(),
            program(0x1000),
        ))
        .initiator(InitiatorSpec::new(
            "display(STRM)",
            SocketSpec::strm(),
            program(0x2000),
        ))
        .memory(MemorySpec::new("m0", 0x0, 0x1000, 4))
        .memory(MemorySpec::new("m1", 0x1000, 0x2000, 2))
        .memory(MemorySpec::new("m2", 0x2000, 0x3000, 1))
}

#[test]
fn completion_logs_are_backend_invariant() {
    // One record, keyed for comparison: (program index, opcode, addr, data).
    type RecordKey = (usize, u8, u64, Vec<u8>);
    let spec = race_free_spec();
    let backends = [Backend::noc(), Backend::bridged(), Backend::bus()];
    let mut all_logs: Vec<Vec<(String, Vec<RecordKey>)>> = Vec::new();
    for backend in &backends {
        let mut sim = spec.build(backend).expect("valid spec");
        assert!(sim.run_until(500_000), "{backend} must drain");
        let logs = sim
            .logs()
            .iter()
            .map(|(name, log)| {
                // Key records by program index: completion *timing* (and
                // hence log order for sockets with posted writes) is
                // backend-specific, the per-command result is not.
                let mut records: Vec<RecordKey> = log
                    .records()
                    .iter()
                    .map(|r| (r.index, r.opcode as u8, r.addr, r.data.clone()))
                    .collect();
                records.sort_unstable_by_key(|r| r.0);
                (name.to_string(), records)
            })
            .collect();
        all_logs.push(logs);
    }
    // Record-for-record agreement: same masters, same order, same
    // opcode/address/data on every interconnect.
    let noc = &all_logs[0];
    assert_eq!(noc.len(), 3);
    assert!(noc.iter().all(|(_, records)| records.len() == 12));
    for (i, backend) in backends.iter().enumerate().skip(1) {
        assert_eq!(
            noc, &all_logs[i],
            "completion logs diverge between noc and {backend}"
        );
    }
}

#[test]
fn reports_carry_master_names_and_fabric_stats() {
    let spec = race_free_spec();
    let mut sim = spec.build(&Backend::noc()).expect("valid spec");
    assert!(sim.run_until(500_000));
    let report = sim.report();
    assert_eq!(report.backend, "noc");
    assert!(report.fabric.is_some(), "NoC backend reports fabric stats");
    assert!(
        report.master("display").is_some(),
        "lookup by name fragment"
    );
    assert_eq!(report.master("display").unwrap().completions, 12);
    let mut bus = spec.build(&Backend::bus()).expect("valid spec");
    assert!(bus.run_until(500_000));
    assert!(bus.report().fabric.is_none(), "bus has no fabric");
    assert_eq!(bus.report().master("io").unwrap().completions, 12);
}

#[test]
fn topology_specs_all_run() {
    let spec = race_free_spec();
    for topology in [
        TopologySpec::Crossbar,
        TopologySpec::Ring { switches: 3 },
        TopologySpec::Mesh {
            width: 2,
            height: 2,
        },
        TopologySpec::Custom {
            switches: 2,
            links: vec![(0, 1)],
            placement: vec![0, 0, 1, 0, 1, 1],
        },
    ] {
        let spec = spec.clone().with_topology(topology.clone());
        let mut sim = spec.build(&Backend::noc()).expect("valid spec");
        assert!(sim.run_until(500_000), "{topology:?} must drain");
        assert_eq!(sim.report().total_completions(), 36, "{topology:?}");
    }
}
