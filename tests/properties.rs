//! Property-based tests over the core data structures and invariants.

use noc_niu::{decode_request, decode_response, encode_request, encode_response};
use noc_transaction::{
    AddressMap, Burst, BurstKind, Fingerprint, MstAddr, Opcode, OrderingModel, OrderingPolicy,
    RespStatus, ServiceBits, SlvAddr, StreamId, Tag, TransactionRequest, TransactionResponse,
};
use noc_transport::{Flit, FlitFifo, Header, Packet};
use proptest::prelude::*;

fn arb_burst() -> impl Strategy<Value = Burst> {
    (
        prop_oneof![
            Just(BurstKind::Incr),
            Just(BurstKind::Wrap),
            Just(BurstKind::Fixed),
            Just(BurstKind::Stream)
        ],
        0u32..=7,   // log2 beat bytes
        1u32..=256, // beats
    )
        .prop_filter_map("wrap needs pow2 beats", |(kind, log_bb, beats)| {
            Burst::new(kind, 1 << log_bb, beats).ok()
        })
}

fn arb_opcode() -> impl Strategy<Value = Opcode> {
    prop_oneof![
        Just(Opcode::Read),
        Just(Opcode::Write),
        Just(Opcode::WritePosted),
        Just(Opcode::ReadExclusive),
        Just(Opcode::WriteExclusive),
        Just(Opcode::ReadLinked),
        Just(Opcode::WriteConditional),
        Just(Opcode::ReadLocked),
        Just(Opcode::WriteUnlock),
        Just(Opcode::Broadcast),
    ]
}

proptest! {
    #[test]
    fn burst_addresses_count_matches_beats(burst in arb_burst(), base in 0u64..1 << 40) {
        let addrs: Vec<u64> = burst.beat_addresses(base).collect();
        prop_assert_eq!(addrs.len() as u32, burst.beats());
        // all addresses beat-aligned
        for a in &addrs {
            prop_assert_eq!(a % burst.beat_bytes() as u64, 0);
        }
    }

    #[test]
    fn burst_chop_preserves_address_sequence(
        burst in arb_burst(),
        base in 0u64..1 << 32,
        max in 1u32..32
    ) {
        let chunks = burst.chop(base, max);
        let chopped: Vec<u64> = chunks
            .iter()
            .flat_map(|(b, c)| c.beat_addresses(*b))
            .collect();
        let original: Vec<u64> = burst.beat_addresses(base).collect();
        prop_assert_eq!(chopped, original);
        for (_, c) in &chunks {
            prop_assert!(c.beats() <= max);
        }
    }

    #[test]
    fn request_codec_round_trips(
        opcode in arb_opcode(),
        burst in arb_burst(),
        addr in 0u64..1 << 40,
        src in 0u16..64,
        dst in 0u16..64,
        tag in 0u8..=255,
        stream in 0u16..1024,
        pressure in 0u8..=3,
    ) {
        let mut b = TransactionRequest::builder(opcode)
            .address(addr)
            .burst(burst)
            .source(MstAddr::new(src))
            .destination(SlvAddr::new(dst))
            .tag(Tag::new(tag))
            .stream(StreamId::new(stream))
            .services(ServiceBits::EXCLUSIVE)
            .pressure(pressure);
        if opcode.is_write() {
            b = b.data(vec![0xA5; burst.total_bytes() as usize]);
        }
        let req = b.build().expect("valid request");
        let packet = encode_request(&req);
        let back = decode_request(&packet).expect("decodes");
        prop_assert_eq!(back, req);
    }

    #[test]
    fn response_codec_round_trips(
        dst in 0u16..64,
        origin in 0u16..64,
        tag in 0u8..=255,
        data in proptest::collection::vec(any::<u8>(), 0..128),
    ) {
        for status in [RespStatus::Okay, RespStatus::ExOkay, RespStatus::ExFail, RespStatus::SlvErr, RespStatus::DecErr] {
            let resp = TransactionResponse::new(
                status, MstAddr::new(dst), SlvAddr::new(origin), Tag::new(tag), data.clone());
            let back = decode_response(&encode_response(&resp, 0)).expect("decodes");
            prop_assert_eq!(back, resp);
        }
    }

    #[test]
    fn packet_flit_round_trip(payload in proptest::collection::vec(any::<u8>(), 0..256), width in 1usize..32) {
        let pkt = Packet::new(Header::request(1, 2, 3), payload);
        let back = Packet::from_flits(&pkt.to_flits(width)).expect("reassembles");
        prop_assert_eq!(back, pkt);
    }

    #[test]
    fn fingerprint_is_permutation_invariant(
        mut records in proptest::collection::vec((any::<u8>(), any::<u64>(), any::<u8>()), 1..20),
        swap_a in any::<prop::sample::Index>(),
        swap_b in any::<prop::sample::Index>(),
    ) {
        let mut fp1 = Fingerprint::new();
        for (op, addr, st) in &records {
            fp1.record(*op, *addr, &[], *st);
        }
        let a = swap_a.index(records.len());
        let b = swap_b.index(records.len());
        records.swap(a, b);
        let mut fp2 = Fingerprint::new();
        for (op, addr, st) in &records {
            fp2.record(*op, *addr, &[], *st);
        }
        prop_assert_eq!(fp1, fp2);
    }

    #[test]
    fn address_map_decode_agrees_with_ranges(
        cuts in proptest::collection::btree_set(1u64..1 << 20, 1..6),
        probe in 0u64..1 << 20,
    ) {
        // build adjacent ranges [0,c1),[c1,c2)... targets 0,1,2...
        let mut map = AddressMap::new();
        let mut bounds: Vec<u64> = cuts.into_iter().collect();
        bounds.insert(0, 0);
        for (i, pair) in bounds.windows(2).enumerate() {
            map.add(pair[0], pair[1], SlvAddr::new(i as u16)).expect("disjoint by construction");
        }
        let last = *bounds.last().expect("non-empty");
        match map.decode(probe) {
            Ok(target) => {
                let i = target.index();
                prop_assert!(probe >= bounds[i] && probe < bounds[i + 1]);
            }
            Err(_) => prop_assert!(probe >= last),
        }
    }

    #[test]
    fn ordering_policy_never_exceeds_budget(
        ops in proptest::collection::vec((0u16..8, 0u16..4, any::<bool>()), 1..200),
        budget in 1u32..16,
    ) {
        let mut policy = OrderingPolicy::new(OrderingModel::IdBased { tags: 4 }, budget)
            .expect("valid config");
        let mut live: Vec<Tag> = Vec::new();
        for (stream, dst, complete) in ops {
            if complete && !live.is_empty() {
                let tag = live.remove(0);
                policy.complete(tag).expect("live tag completes");
            } else if let Ok(tag) = policy.try_issue(StreamId::new(stream), SlvAddr::new(dst)) {
                live.push(tag);
            }
            prop_assert!(policy.outstanding() <= budget);
            prop_assert_eq!(policy.outstanding() as usize, live.len());
        }
    }

    #[test]
    fn fifo_preserves_order_and_capacity(
        pushes in proptest::collection::vec(any::<bool>(), 1..100),
        capacity in 1usize..16,
    ) {
        let mut fifo = FlitFifo::new(capacity);
        let mut model: std::collections::VecDeque<u64> = Default::default();
        let mut next_id = 0u64;
        for push in pushes {
            if push {
                let flit = Flit::head_tail(next_id, Header::request(0, 0, 0));
                let accepted = fifo.push(flit);
                prop_assert_eq!(accepted, model.len() < capacity);
                if accepted {
                    model.push_back(next_id);
                }
                next_id += 1;
            } else if let Some(flit) = fifo.pop() {
                let expect = model.pop_front().expect("model in sync");
                prop_assert_eq!(flit.packet_id(), expect);
            } else {
                prop_assert!(model.is_empty());
            }
            prop_assert_eq!(fifo.len(), model.len());
        }
    }

    #[test]
    fn endianness_is_involution(
        data in proptest::collection::vec(any::<u8>(), 0..64),
        log_w in 0usize..4,
    ) {
        use noc_transaction::Endianness;
        let w = 1usize << log_w;
        let once = Endianness::Big.converted(&data, w);
        let twice = Endianness::Big.converted(&once, w);
        prop_assert_eq!(twice, data);
    }
}
