//! Property-style tests over the core data structures and invariants.
//!
//! Cases are generated from a seeded [`SplitMix64`] stream (no external
//! property-testing dependency), so every run explores the same, fully
//! reproducible sample of the input space. On failure, the iteration
//! index pinpoints the case.

use noc_kernel::SplitMix64;
use noc_niu::{decode_request, decode_response, encode_request, encode_response};
use noc_transaction::{
    AddressMap, Burst, BurstKind, Fingerprint, MstAddr, Opcode, OrderingModel, OrderingPolicy,
    RespStatus, ServiceBits, SlvAddr, StreamId, Tag, TransactionRequest, TransactionResponse,
};
use noc_transport::{Flit, FlitFifo, Header, Packet};

const CASES: usize = 300;

fn arb_burst(rng: &mut SplitMix64) -> Burst {
    loop {
        let kind = match rng.next_below(4) {
            0 => BurstKind::Incr,
            1 => BurstKind::Wrap,
            2 => BurstKind::Fixed,
            _ => BurstKind::Stream,
        };
        let beat_bytes = 1u32 << rng.next_below(8);
        let beats = rng.next_range(1, 257) as u32;
        if let Ok(burst) = Burst::new(kind, beat_bytes, beats) {
            return burst;
        }
    }
}

fn arb_opcode(rng: &mut SplitMix64) -> Opcode {
    const OPS: [Opcode; 10] = [
        Opcode::Read,
        Opcode::Write,
        Opcode::WritePosted,
        Opcode::ReadExclusive,
        Opcode::WriteExclusive,
        Opcode::ReadLinked,
        Opcode::WriteConditional,
        Opcode::ReadLocked,
        Opcode::WriteUnlock,
        Opcode::Broadcast,
    ];
    OPS[rng.next_below(OPS.len() as u64) as usize]
}

fn arb_bytes(rng: &mut SplitMix64, max_len: usize) -> Vec<u8> {
    let len = rng.next_below(max_len as u64 + 1) as usize;
    (0..len).map(|_| rng.next_u64() as u8).collect()
}

#[test]
fn burst_addresses_count_matches_beats() {
    let mut rng = SplitMix64::new(0xB0157);
    for case in 0..CASES {
        let burst = arb_burst(&mut rng);
        let base = rng.next_below(1 << 40);
        let addrs: Vec<u64> = burst.beat_addresses(base).collect();
        assert_eq!(addrs.len() as u32, burst.beats(), "case {case}: {burst:?}");
        for a in &addrs {
            assert_eq!(a % burst.beat_bytes() as u64, 0, "case {case}: {burst:?}");
        }
    }
}

#[test]
fn burst_chop_preserves_address_sequence() {
    let mut rng = SplitMix64::new(0xC40B);
    for case in 0..CASES {
        let burst = arb_burst(&mut rng);
        let base = rng.next_below(1 << 32);
        let max = rng.next_range(1, 32) as u32;
        let chunks = burst.chop(base, max);
        let chopped: Vec<u64> = chunks
            .iter()
            .flat_map(|(b, c)| c.beat_addresses(*b))
            .collect();
        let original: Vec<u64> = burst.beat_addresses(base).collect();
        assert_eq!(chopped, original, "case {case}: {burst:?} chopped at {max}");
        for (_, c) in &chunks {
            assert!(c.beats() <= max, "case {case}");
        }
    }
}

#[test]
fn request_codec_round_trips() {
    let mut rng = SplitMix64::new(0x2E9);
    for case in 0..CASES {
        let opcode = arb_opcode(&mut rng);
        let burst = arb_burst(&mut rng);
        let mut b = TransactionRequest::builder(opcode)
            .address(rng.next_below(1 << 40))
            .burst(burst)
            .source(MstAddr::new(rng.next_below(64) as u16))
            .destination(SlvAddr::new(rng.next_below(64) as u16))
            .tag(Tag::new(rng.next_u64() as u8))
            .stream(StreamId::new(rng.next_below(1024) as u16))
            .services(ServiceBits::EXCLUSIVE)
            .pressure(rng.next_below(4) as u8);
        if opcode.is_write() {
            b = b.data(vec![0xA5; burst.total_bytes() as usize]);
        }
        let Ok(req) = b.build() else {
            continue; // opcode/burst combination rejected by the builder
        };
        let packet = encode_request(&req);
        let back = decode_request(&packet).expect("decodes");
        assert_eq!(back, req, "case {case}");
    }
}

#[test]
fn response_codec_round_trips() {
    let mut rng = SplitMix64::new(0x4E59);
    for case in 0..CASES {
        let data = arb_bytes(&mut rng, 128);
        let dst = MstAddr::new(rng.next_below(64) as u16);
        let origin = SlvAddr::new(rng.next_below(64) as u16);
        let tag = Tag::new(rng.next_u64() as u8);
        for status in [
            RespStatus::Okay,
            RespStatus::ExOkay,
            RespStatus::ExFail,
            RespStatus::SlvErr,
            RespStatus::DecErr,
        ] {
            let resp = TransactionResponse::new(status, dst, origin, tag, data.clone());
            let back = decode_response(&encode_response(&resp, 0)).expect("decodes");
            assert_eq!(back, resp, "case {case}");
        }
    }
}

#[test]
fn packet_flit_round_trip() {
    let mut rng = SplitMix64::new(0xF117);
    for case in 0..CASES {
        let payload = arb_bytes(&mut rng, 256);
        let width = rng.next_range(1, 32) as usize;
        let pkt = Packet::new(Header::request(1, 2, 3), payload);
        let back = Packet::from_flits(&pkt.to_flits(width)).expect("reassembles");
        assert_eq!(back, pkt, "case {case}: width {width}");
    }
}

#[test]
fn fingerprint_is_permutation_invariant() {
    let mut rng = SplitMix64::new(0xF12);
    for case in 0..CASES {
        let n = rng.next_range(1, 20) as usize;
        let mut records: Vec<(u8, u64, u8)> = (0..n)
            .map(|_| (rng.next_u64() as u8, rng.next_u64(), rng.next_u64() as u8))
            .collect();
        let mut fp1 = Fingerprint::new();
        for (op, addr, st) in &records {
            fp1.record(*op, *addr, &[], *st);
        }
        let a = rng.next_below(n as u64) as usize;
        let b = rng.next_below(n as u64) as usize;
        records.swap(a, b);
        let mut fp2 = Fingerprint::new();
        for (op, addr, st) in &records {
            fp2.record(*op, *addr, &[], *st);
        }
        assert_eq!(fp1, fp2, "case {case}: swap {a}<->{b}");
    }
}

#[test]
fn address_map_decode_agrees_with_ranges() {
    let mut rng = SplitMix64::new(0xADD2);
    for case in 0..CASES {
        // build adjacent ranges [0,c1),[c1,c2)... targets 0,1,2...
        let n_cuts = rng.next_range(1, 6) as usize;
        let mut cuts: Vec<u64> = (0..n_cuts).map(|_| rng.next_range(1, 1 << 20)).collect();
        cuts.sort_unstable();
        cuts.dedup();
        let probe = rng.next_below(1 << 20);
        let mut map = AddressMap::new();
        let mut bounds = cuts;
        bounds.insert(0, 0);
        for (i, pair) in bounds.windows(2).enumerate() {
            map.add(pair[0], pair[1], SlvAddr::new(i as u16))
                .expect("disjoint by construction");
        }
        let last = *bounds.last().expect("non-empty");
        match map.decode(probe) {
            Ok(target) => {
                let i = target.index();
                assert!(
                    probe >= bounds[i] && probe < bounds[i + 1],
                    "case {case}: probe {probe:#x} decoded to {i}"
                );
            }
            Err(_) => assert!(probe >= last, "case {case}: probe {probe:#x} undecoded"),
        }
    }
}

#[test]
fn ordering_policy_never_exceeds_budget() {
    let mut rng = SplitMix64::new(0x02DE2);
    for case in 0..CASES {
        let budget = rng.next_range(1, 16) as u32;
        let n_ops = rng.next_range(1, 200) as usize;
        let mut policy =
            OrderingPolicy::new(OrderingModel::IdBased { tags: 4 }, budget).expect("valid config");
        let mut live: Vec<Tag> = Vec::new();
        for op in 0..n_ops {
            let stream = rng.next_below(8) as u16;
            let dst = rng.next_below(4) as u16;
            let complete = rng.chance(0.5);
            if complete && !live.is_empty() {
                let tag = live.remove(0);
                policy.complete(tag).expect("live tag completes");
            } else if let Ok(tag) = policy.try_issue(StreamId::new(stream), SlvAddr::new(dst)) {
                live.push(tag);
            }
            assert!(policy.outstanding() <= budget, "case {case} op {op}");
            assert_eq!(
                policy.outstanding() as usize,
                live.len(),
                "case {case} op {op}"
            );
        }
    }
}

#[test]
fn fifo_preserves_order_and_capacity() {
    let mut rng = SplitMix64::new(0xF1F0);
    for case in 0..CASES {
        let capacity = rng.next_range(1, 16) as usize;
        let n_ops = rng.next_range(1, 100) as usize;
        let mut fifo = FlitFifo::new(capacity);
        let mut model: std::collections::VecDeque<u64> = Default::default();
        let mut next_id = 0u64;
        for op in 0..n_ops {
            if rng.chance(0.5) {
                let flit = Flit::head_tail(next_id, Header::request(0, 0, 0));
                let accepted = fifo.push(flit);
                assert_eq!(accepted, model.len() < capacity, "case {case} op {op}");
                if accepted {
                    model.push_back(next_id);
                }
                next_id += 1;
            } else if let Some(flit) = fifo.pop() {
                let expect = model.pop_front().expect("model in sync");
                assert_eq!(flit.packet_id(), expect, "case {case} op {op}");
            } else {
                assert!(model.is_empty(), "case {case} op {op}");
            }
            assert_eq!(fifo.len(), model.len(), "case {case} op {op}");
        }
    }
}

#[test]
fn endianness_is_involution() {
    use noc_transaction::Endianness;
    let mut rng = SplitMix64::new(0xE2D);
    for case in 0..CASES {
        let data = arb_bytes(&mut rng, 64);
        let w = 1usize << rng.next_below(4);
        let once = Endianness::Big.converted(&data, w);
        let twice = Endianness::Big.converted(&once, w);
        assert_eq!(twice, data, "case {case}: width {w}");
    }
}

/// A random valid scenario exercising every serializable knob: socket
/// mixes and parameters, target kinds (memory, AXI slave, service
/// block), ordering/outstanding/pressure/flit overrides, clock
/// divisors, burst kinds, delays, `[config]` link-class overrides
/// (pipeline depth, CDC synchroniser depth, per-class splits) and all
/// four topology shapes. Half the time the programs issue back-to-back
/// (no delays), so the dense ≡ horizon property is checked *while
/// traffic is in flight*, not just across quiescent gaps.
#[cfg(test)]
fn arb_scenario(rng: &mut SplitMix64, clocked: bool) -> noc_scenario::ScenarioSpec {
    use noc_protocols::SocketCommand;
    use noc_scenario::{
        InitiatorSpec, MemorySpec, NocConfigSpec, ScenarioSpec, SocketSpec, TargetSpec,
        TopologySpec,
    };
    use noc_transaction::Opcode;

    let masters = rng.next_range(1, 4) as usize;
    // Back-to-back mode: no inter-command delays anywhere, so horizon
    // skips can only come from in-flight horizons (links, service
    // windows), never from quiescent gaps.
    let back_to_back = rng.chance(0.5);
    let mut spec = ScenarioSpec::new();
    for m in 0..masters {
        let base = m as u64 * 0x1000;
        let n_cmds = rng.next_range(1, 7) as usize;
        let socket = match rng.next_below(7) {
            0 => SocketSpec::Ahb,
            1 => SocketSpec::Ocp {
                threads: rng.next_range(1, 3) as u8,
                per_thread: rng.next_range(1, 5) as u32,
            },
            2 => SocketSpec::Axi {
                tags: rng.next_range(1, 5) as u8,
                per_id: rng.next_range(1, 4) as u32,
                total: rng.next_range(2, 8) as u32,
            },
            3 => SocketSpec::Strm {
                read_limit: rng.next_range(1, 5) as u32,
            },
            4 => SocketSpec::pvci(),
            5 => SocketSpec::bvci(),
            _ => SocketSpec::avci(),
        };
        let single_beat = matches!(socket, SocketSpec::Vci { .. });
        // Streams must fit the socket's thread/ID space; posted writes
        // are an OCP/STRM feature.
        let streams = match socket {
            SocketSpec::Ocp { threads, .. } => threads as u64,
            SocketSpec::Axi { tags, .. } => tags as u64,
            SocketSpec::Vci {
                flavor: noc_protocols::vci::VciFlavor::Advanced { threads },
                ..
            } => threads as u64,
            _ => 1,
        };
        let posted_ok = matches!(socket, SocketSpec::Ocp { .. } | SocketSpec::Strm { .. });
        let program: Vec<SocketCommand> = (0..n_cmds)
            .map(|i| {
                let addr = (base + 0x40 + rng.next_below(0xE00)) & !0x3F;
                let cmd = if rng.chance(0.5) {
                    SocketCommand::read(addr, 4)
                } else {
                    SocketCommand::write(addr, 4, rng.next_u64())
                };
                let beats = if single_beat {
                    1
                } else {
                    1 << rng.next_below(3)
                };
                let kind = if beats > 1 && rng.chance(0.2) {
                    BurstKind::Wrap
                } else {
                    BurstKind::Incr
                };
                let delay = if back_to_back {
                    0
                } else {
                    rng.next_below(200) as u32 * (i as u32 % 3)
                };
                let mut cmd = cmd
                    .with_burst(kind, beats)
                    .with_delay(delay)
                    .with_stream(StreamId::new(rng.next_below(streams) as u16));
                if posted_ok && cmd.opcode == Opcode::Write && rng.chance(0.3) {
                    cmd = cmd.with_opcode(Opcode::WritePosted);
                }
                cmd
            })
            .collect();
        let mut ini = InitiatorSpec::new(&format!("m{m}"), socket, program);
        if rng.chance(0.4) {
            ini = ini.with_outstanding(rng.next_range(1, 9) as u32);
        }
        if rng.chance(0.3) {
            ini = ini.with_pressure(rng.next_below(4) as u8);
        }
        if rng.chance(0.3) {
            ini = ini.with_flit_bytes(1 << rng.next_range(2, 5));
        }
        if clocked {
            ini = ini.with_clock_divisor(rng.next_range(1, 4));
        }
        spec = spec.initiator(ini);
    }
    for m in 0..masters {
        let mut mem = MemorySpec::new(
            &format!("mem{m}"),
            m as u64 * 0x1000,
            (m as u64 + 1) * 0x1000,
            rng.next_range(1, 6) as u32,
        )
        .with_queue(rng.next_range(2, 10) as usize);
        // Half the targets are plain memories; the rest exercise the
        // declarative target sockets.
        match rng.next_below(4) {
            0 | 1 => {}
            2 => {
                mem = mem.with_target(TargetSpec::AxiSlave {
                    bank_stagger: rng.next_below(3) as u32,
                })
            }
            _ => {
                mem = mem.with_target(TargetSpec::Service {
                    write_latency: rng.next_range(1, 6) as u32,
                    exclusive: rng.chance(0.3),
                })
            }
        }
        if clocked && rng.chance(0.3) {
            mem = mem.with_clock_divisor(rng.next_range(1, 3));
        }
        spec = spec.memory(mem);
    }
    // The `[config]` section: random link pipeline depths, CDC
    // synchroniser depths and a per-class endpoint split — the knobs
    // the event-horizon machinery must time-warp through exactly.
    if rng.chance(0.5) {
        let mut cfg = NocConfigSpec::new();
        if rng.chance(0.8) {
            cfg.link.pipeline = Some(rng.next_below(13) as u32);
        }
        if rng.chance(0.3) {
            cfg.link.phits = Some(1 << rng.next_below(2));
        }
        if rng.chance(0.4) {
            cfg.link.cdc_latency = Some(rng.next_range(1, 6) as u32);
        }
        if rng.chance(0.4) {
            cfg.endpoint.pipeline = Some(rng.next_below(5) as u32);
        }
        // Ample capacity keeps deep pipelines from starving on the
        // default 16-flit window (back-pressure is still correct, just
        // slower to simulate densely).
        cfg.link.capacity = Some(64);
        if rng.chance(0.3) {
            cfg.buffer_depth = Some(rng.next_range(4, 17) as usize);
        }
        spec = spec.with_config(cfg);
    }
    let endpoints = 2 * masters;
    spec.with_topology(match rng.next_below(4) {
        0 => TopologySpec::Crossbar,
        1 => TopologySpec::Ring {
            switches: rng.next_range(2, 5) as usize,
        },
        2 => TopologySpec::Mesh {
            width: 2,
            height: rng.next_range(1, 3) as usize,
        },
        _ => TopologySpec::Custom {
            switches: 2,
            links: vec![(0, 1)],
            placement: (0..endpoints).map(|i| i % 2).collect(),
        },
    })
}

/// Text round-trip: `parse(emit(spec))` reproduces random specs —
/// target declarations included — knob-for-knob with `emit` a fixpoint,
/// and the round-tripped spec runs record-identically (timestamps
/// included) to the original on every backend that models it, under
/// dense *and* horizon stepping.
#[test]
fn scenario_text_round_trips_and_runs_identically() {
    use noc_scenario::{Backend, ScenarioSpec, StepMode, TargetSpec};

    let mut rng = SplitMix64::new(0x7E47);
    for case in 0..40 {
        let clocked = rng.chance(0.3);
        let spec = arb_scenario(&mut rng, clocked);
        let text = spec.to_text();
        let back = ScenarioSpec::from_text(&text)
            .unwrap_or_else(|e| panic!("case {case}: emitted text must parse: {e}\n{text}"));
        assert_eq!(back, spec, "case {case}: round-trip changed the spec");
        assert_eq!(back.to_text(), text, "case {case}: emit is not a fixpoint");

        // Only a subset needs the (much slower) execution comparison.
        if case % 4 != 0 {
            continue;
        }
        // The bus cannot host a target-owned exclusive port; it must say
        // so with the typed error instead of running the spec wrong.
        let bus_ok = !spec.memories.iter().any(|m| {
            matches!(
                m.target,
                TargetSpec::Service {
                    exclusive: true,
                    ..
                }
            )
        });
        let mut backends = vec![Backend::noc()];
        if !clocked {
            backends.push(Backend::bridged());
            if bus_ok {
                backends.push(Backend::bus());
            } else {
                assert!(
                    matches!(
                        spec.build(&Backend::bus()),
                        Err(noc_scenario::ScenarioError::UnsupportedTarget { .. })
                    ),
                    "case {case}: bus must reject the exclusive service target"
                );
            }
        }
        for backend in &backends {
            let run = |s: &ScenarioSpec, mode: StepMode| {
                let mut sim = s.build(backend).expect("valid random spec");
                let drained = sim.run_until_with(3_000_000, mode);
                let logs: Vec<Vec<noc_protocols::CompletionRecord>> = sim
                    .logs()
                    .iter()
                    .map(|(_, log)| log.records().to_vec())
                    .collect();
                (drained, sim.now(), logs)
            };
            let original = run(&spec, StepMode::Horizon);
            let round_tripped = run(&back, StepMode::Horizon);
            let dense = run(&spec, StepMode::Dense);
            assert!(original.0, "case {case}: {backend} must drain\n{text}");
            assert_eq!(
                original, round_tripped,
                "case {case}: round-tripped spec diverges on {backend}"
            );
            assert_eq!(
                original, dense,
                "case {case}: dense and horizon stepping diverge on {backend}"
            );
        }
    }
}

/// The calendar queue against a linear-scan model: across random
/// register/set/advance sequences, `pop_due` must fire exactly the set
/// of wakeups scheduled at or before `now` (each at most once — heap
/// delivery order is (cycle, id), so callers sort; the set is what
/// matters), `scheduled` must mirror the model's slot state, and `peek`
/// must never exceed the true earliest pending wakeup — lazy
/// cancellation may surface a stale *early* minimum, but a late one
/// would let the advance loop sleep through work.
#[test]
fn calendar_fires_exactly_the_due_set_and_never_peeks_late() {
    use noc_kernel::Calendar;

    let mut rng = SplitMix64::new(0xCA1E);
    for case in 0..CASES {
        let slots = rng.next_range(1, 12) as usize;
        let mut cal = Calendar::new();
        let ids: Vec<_> = (0..slots).map(|_| cal.register()).collect();
        let mut model: Vec<Option<u64>> = vec![None; slots];
        let mut now = 0u64;
        for op in 0..rng.next_range(10, 120) {
            if rng.chance(0.6) {
                // Reschedule a random slot: later, earlier, or cleared —
                // all three exercise lazy cancellation.
                let i = rng.next_below(slots as u64) as usize;
                let at = if rng.chance(0.2) {
                    None
                } else {
                    Some(now + rng.next_below(50))
                };
                cal.set(ids[i], at);
                model[i] = at;
            } else {
                now += rng.next_below(30);
                let mut fired = Vec::new();
                cal.pop_due(now, |id| fired.push(id.index()));
                fired.sort_unstable();
                let expect: Vec<usize> = (0..slots)
                    .filter(|&i| model[i].is_some_and(|at| at <= now))
                    .collect();
                for &i in &expect {
                    model[i] = None;
                }
                assert_eq!(fired, expect, "case {case} op {op} now {now}");
            }
            for (i, &id) in ids.iter().enumerate() {
                assert_eq!(cal.scheduled(id), model[i], "case {case} op {op}");
            }
            let true_min = model.iter().flatten().min().copied();
            match (cal.peek(), true_min) {
                // A peek may be stale-early (a cancelled or rescheduled
                // entry still in the heap) but never later than the
                // earliest live wakeup.
                (Some(peeked), Some(min)) => {
                    assert!(peeked <= min, "case {case} op {op}: {peeked} > {min}")
                }
                (None, Some(min)) => panic!("case {case} op {op}: empty peek hides {min}"),
                _ => {}
            }
        }
    }
}

/// Randomised scenarios: horizon stepping must be record-identical
/// (timestamps included) to dense polling on every backend, across
/// random programs, gaps, socket mixes, target kinds, clock divisors
/// and `[config]` link shapes — including the back-to-back cases where
/// every skipped cycle lies *inside* an in-flight transaction (deep
/// pipelined crossings, CDC synchronisers, memory service windows)
/// rather than in a quiescent gap.
#[test]
fn horizon_stepping_equals_dense_on_random_scenarios() {
    use noc_scenario::{Backend, StepMode, TargetSpec};

    let mut rng = SplitMix64::new(0x40712);
    for case in 0..30 {
        let clocked = rng.chance(0.4); // divided clocks → NoC only
        let spec = arb_scenario(&mut rng, clocked);
        // The bus rejects target-owned exclusive ports with a typed
        // error; skip it for those specs (covered in scenario_api.rs).
        let bus_ok = !spec.memories.iter().any(|m| {
            matches!(
                m.target,
                TargetSpec::Service {
                    exclusive: true,
                    ..
                }
            )
        });
        let mut backends = vec![Backend::noc()];
        if !clocked {
            backends.push(Backend::bridged());
            if bus_ok {
                backends.push(Backend::bus());
            }
        }
        for backend in &backends {
            let run = |mode: StepMode| {
                let mut sim = spec.build(backend).expect("valid random spec");
                let drained = sim.run_until_with(3_000_000, mode);
                let logs: Vec<Vec<noc_protocols::CompletionRecord>> = sim
                    .logs()
                    .iter()
                    .map(|(_, log)| log.records().to_vec())
                    .collect();
                let counters = (sim.horizon_polls(), sim.calendar_pops());
                ((drained, sim.now(), logs), counters)
            };
            let (dense, _) = run(StepMode::Dense);
            let (horizon, (polls, pops)) = run(StepMode::Horizon);
            assert!(dense.0, "case {case}: {backend} dense must drain");
            assert_eq!(dense, horizon, "case {case}: divergence on {backend}");
            // Wakeup discipline: the advance loop must be paying for
            // its next_activity polls with calendar traffic, the same
            // bound `scn --assert-wakeup-discipline` enforces on the
            // corpus. A rescan-style loop polls once per cycle and
            // blows through this immediately.
            assert!(
                polls <= pops * 4 + 64,
                "case {case}: {backend} polled {polls} times against {pops} pops"
            );
        }
    }
}

/// A random scenario whose every initiator runs a *generated* program
/// (bursty or zipf) — shapes constrained exactly as `validate` demands,
/// so every draw is a legal spec.
fn arb_stochastic_scenario(rng: &mut SplitMix64) -> noc_scenario::ScenarioSpec {
    use noc_scenario::{
        BurstySpec, Discipline, InitiatorSpec, MemorySpec, ScenarioSpec, SocketSpec,
        StochasticShape, ZipfSpec,
    };

    let masters = rng.next_range(1, 4) as usize;
    let regions = rng.next_range(2, 5) as usize;
    let mut spec = ScenarioSpec::new();
    for m in 0..masters {
        let socket = match rng.next_below(5) {
            0 => SocketSpec::Ahb,
            1 => SocketSpec::Ocp {
                threads: rng.next_range(1, 3) as u8,
                per_thread: rng.next_range(1, 5) as u32,
            },
            2 => SocketSpec::Axi {
                tags: rng.next_range(1, 5) as u8,
                per_id: rng.next_range(1, 4) as u32,
                total: rng.next_range(2, 8) as u32,
            },
            3 => SocketSpec::bvci(),
            _ => SocketSpec::avci(),
        };
        let shape = StochasticShape {
            read_pct: rng.next_below(101) as u8,
            beats: if matches!(socket, SocketSpec::Vci { .. }) {
                1
            } else {
                1 << rng.next_below(3)
            },
            beat_bytes: 4,
            streams: match socket.max_streams() {
                Some(limit) => rng.next_range(1, limit as u64) as u16,
                None => rng.next_range(1, 4) as u16,
            },
            gap: rng.next_below(8) as u32,
            discipline: if rng.chance(0.5) {
                Discipline::Open
            } else {
                Discipline::Closed
            },
        };
        let commands = rng.next_range(10, 40) as usize;
        let program: noc_scenario::ProgramSpec = if rng.chance(0.5) {
            let mut b = BurstySpec::new(
                rng.next_u64(),
                commands,
                rng.next_range(1, 6) as u32,
                rng.next_below(60) as u32,
            );
            b.shape = shape;
            b.into()
        } else {
            let mut z = ZipfSpec::new(rng.next_u64(), commands, rng.next_below(3001) as u32);
            z.shape = shape;
            z.into()
        };
        let mut ini = InitiatorSpec::new(&format!("m{m}"), socket, program);
        if rng.chance(0.4) {
            ini = ini.with_outstanding(rng.next_range(1, 9) as u32);
        }
        spec = spec.initiator(ini);
    }
    for t in 0..regions {
        spec = spec.memory(
            MemorySpec::new(
                &format!("mem{t}"),
                t as u64 * 0x1000,
                (t as u64 + 1) * 0x1000,
                rng.next_range(1, 6) as u32,
            )
            .with_queue(rng.next_range(2, 10) as usize),
        );
    }
    spec
}

/// The tentpole determinism pin: random stochastic specs round-trip
/// through the text format (`parse(emit(x)) == x`, emit a fixpoint) and
/// the same seed produces record-for-record identical completion logs:
/// timestamps included across dense/horizon stepping on one backend,
/// and the same functional records (index, opcode, address, status,
/// data, stream) across all three backends — whose fabrics time the
/// same traffic differently — with every commanded completion
/// accounted for.
#[test]
fn stochastic_specs_round_trip_and_run_identically() {
    use noc_scenario::{Backend, ProgramSpec, ScenarioSpec, StepMode};

    type Logs = Vec<Vec<noc_protocols::CompletionRecord>>;
    // The seed-determined command stream: per-master records in program
    // order, without the cycle stamps and completion interleaving that
    // legitimately differ between fabrics.
    fn functional(logs: &Logs) -> Vec<Vec<(usize, noc_transaction::Opcode, u64, u16)>> {
        logs.iter()
            .map(|log| {
                let mut cmds: Vec<_> = log
                    .iter()
                    .map(|r| (r.index, r.opcode, r.addr, r.stream.raw()))
                    .collect();
                cmds.sort_unstable_by_key(|c| c.0);
                cmds
            })
            .collect()
    }

    let mut rng = SplitMix64::new(0x570C);
    for case in 0..30 {
        let spec = arb_stochastic_scenario(&mut rng);
        let text = spec.to_text();
        let back = ScenarioSpec::from_text(&text)
            .unwrap_or_else(|e| panic!("case {case}: emitted text must parse: {e}\n{text}"));
        assert_eq!(back, spec, "case {case}: round-trip changed the spec");
        assert_eq!(back.to_text(), text, "case {case}: emit is not a fixpoint");

        if case % 3 != 0 {
            continue;
        }
        let expected: usize = spec
            .initiators
            .iter()
            .map(|i| match &i.program {
                ProgramSpec::Bursty(b) => b.commands,
                ProgramSpec::Zipf(z) => z.commands,
                _ => unreachable!("arb emits only stochastic kinds"),
            })
            .sum();
        let mut cross_backend = None;
        for backend in [Backend::noc(), Backend::bridged(), Backend::bus()] {
            let mut timed = None;
            for mode in [StepMode::Dense, StepMode::Horizon] {
                let mut sim = back.build(&backend).expect("valid stochastic spec");
                let drained = sim.run_until_with(3_000_000, mode);
                assert!(
                    drained,
                    "case {case}: {backend} {mode:?} must drain\n{text}"
                );
                let logs: Logs = sim
                    .logs()
                    .iter()
                    .map(|(_, log)| log.records().to_vec())
                    .collect();
                let completions: usize = logs.iter().map(Vec::len).sum();
                assert_eq!(
                    completions, expected,
                    "case {case}: {backend} {mode:?} lost commands"
                );
                match &timed {
                    None => timed = Some(logs),
                    Some(r) => assert_eq!(
                        r, &logs,
                        "case {case}: dense and horizon diverge on {backend}\n{text}"
                    ),
                }
            }
            let records = functional(timed.as_ref().expect("both modes ran"));
            match &cross_backend {
                None => cross_backend = Some(records),
                Some(r) => assert_eq!(
                    r, &records,
                    "case {case}: {backend} replays different records than the reference\n{text}"
                ),
            }
        }
    }
}

/// Trace replay: a generated trace file streams through the cursor
/// (bounded pulls, never resident) and replays record-identically on
/// all three backends and both step modes, preserving the trace's
/// inter-arrival spacing in the issue stream.
#[test]
fn trace_replay_is_identical_across_backends_and_modes() {
    use noc_scenario::{
        Backend, InitiatorSpec, MemorySpec, ScenarioSpec, SocketSpec, StepMode, TraceSpec,
    };
    use std::io::Write;

    let dir = std::env::temp_dir().join("noc-scenario-prop-trace");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("prop.trace");
    let mut rng = SplitMix64::new(0x7AACE);
    let mut f = std::fs::File::create(&path).expect("trace file");
    writeln!(f, "# generated by the property suite").unwrap();
    let mut ts = 0u64;
    for i in 0..300 {
        ts += rng.next_below(40);
        let addr = (rng.next_below(2) * 0x1000 + rng.next_below(0xF00)) & !0xF;
        let op = if rng.chance(0.6) { "read" } else { "write" };
        let stream = i % 2;
        writeln!(f, "{ts} {op} {addr:#x} 4 4 {stream}").unwrap();
    }
    drop(f);

    let spec = ScenarioSpec::new()
        .initiator(InitiatorSpec::new(
            "replay",
            SocketSpec::Ocp {
                threads: 2,
                per_thread: 4,
            },
            TraceSpec::new(path.to_str().expect("utf-8 temp path")),
        ))
        .memory(MemorySpec::new("m0", 0x0, 0x1000, 2))
        .memory(MemorySpec::new("m1", 0x1000, 0x2000, 4));
    let mut cross_backend = None;
    for backend in [Backend::noc(), Backend::bridged(), Backend::bus()] {
        let mut timed = None;
        for mode in [StepMode::Dense, StepMode::Horizon] {
            let mut sim = spec.build(&backend).expect("trace spec builds");
            assert!(
                sim.run_until_with(3_000_000, mode),
                "{backend} {mode:?} must drain the trace"
            );
            let logs: Vec<Vec<noc_protocols::CompletionRecord>> = sim
                .logs()
                .iter()
                .map(|(_, log)| log.records().to_vec())
                .collect();
            assert_eq!(logs[0].len(), 300, "{backend} {mode:?} lost trace records");
            match &timed {
                None => timed = Some(logs),
                Some(r) => assert_eq!(r, &logs, "{backend}: dense and horizon replay diverge"),
            }
        }
        // Across backends the cycle stamps and cross-stream completion
        // interleaving differ (different fabrics); the replayed command
        // stream — records in program order — must not.
        let records: Vec<
            Vec<(
                usize,
                noc_transaction::Opcode,
                u64,
                noc_transaction::StreamId,
            )>,
        > = timed
            .expect("both modes ran")
            .iter()
            .map(|log| {
                let mut cmds: Vec<_> = log
                    .iter()
                    .map(|r| (r.index, r.opcode, r.addr, r.stream))
                    .collect();
                cmds.sort_unstable_by_key(|c| c.0);
                cmds
            })
            .collect();
        match &cross_backend {
            None => cross_backend = Some(records),
            Some(r) => assert_eq!(r, &records, "{backend} replays a different record sequence"),
        }
    }
}

/// Runs a spec on the NoC backend in one step mode and captures
/// everything observable: drain flag, final cycle, every completion
/// record (timestamps included), and the report counters — fabric
/// totals, per-master histograms and fingerprints. Mode-dependent
/// accounting (executed steps, poll/pop counters) is deliberately
/// excluded: those measure *how* time advanced, not what the hardware
/// did.
#[cfg(test)]
fn run_noc_observable(
    spec: &noc_scenario::ScenarioSpec,
    mode: noc_scenario::StepMode,
) -> (bool, u64, Vec<Vec<noc_protocols::CompletionRecord>>, String) {
    let mut sim = spec
        .build(&noc_scenario::Backend::noc())
        .expect("valid spec");
    let drained = sim.run_until_with(3_000_000, mode);
    let logs = sim
        .logs()
        .iter()
        .map(|(_, log)| log.records().to_vec())
        .collect();
    let r = sim.report();
    let counters = format!(
        "cycles={} done={} fabric={:?} masters={:?}",
        r.cycles, r.all_done, r.fabric, r.masters
    );
    (drained, sim.now(), logs, counters)
}

/// The tentpole determinism bar: conservative sharded execution must be
/// record-for-record and counter-for-counter bit-identical to
/// single-thread dense and horizon stepping, for *any* region count —
/// including counts that do not divide the switch count and counts
/// exceeding it (clamped). Random fixed-program scenarios alternate
/// with stochastic (bursty/Zipf) ones so both feed paths cross the
/// epoch barrier.
#[test]
fn sharded_stepping_equals_dense_and_horizon_on_random_scenarios() {
    use noc_scenario::StepMode;

    let mut rng = SplitMix64::new(0x5AA5D);
    for case in 0..12 {
        let spec = if case % 2 == 0 {
            let clocked = rng.chance(0.4);
            arb_scenario(&mut rng, clocked)
        } else {
            arb_stochastic_scenario(&mut rng)
        };
        let dense = run_noc_observable(&spec, StepMode::Dense);
        assert!(dense.0, "case {case}: dense must drain");
        let horizon = run_noc_observable(&spec, StepMode::Horizon);
        assert_eq!(dense, horizon, "case {case}: horizon diverges from dense");
        for threads in [2, 4, 7] {
            let sharded = run_noc_observable(&spec, StepMode::Sharded { threads });
            assert_eq!(
                dense, sharded,
                "case {case}: sharded({threads}) diverges from dense"
            );
        }
    }
}

/// Sharded trace replay plus checkpointing under sharding: a snapshot
/// taken mid-run of a sharded simulation — regions parked at the epoch
/// frontier — must resume bit-identically, and so must the original it
/// was forked from.
#[test]
fn sharded_trace_replay_and_snapshots_resume_identically() {
    use noc_protocols::SocketCommand;
    use noc_scenario::{
        Backend, InitiatorSpec, MemorySpec, ScenarioSpec, SocketSpec, StepMode, TraceSpec,
    };
    use std::io::Write;

    let dir = std::env::temp_dir().join("noc-scenario-prop-shard-trace");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("shard.trace");
    let mut rng = SplitMix64::new(0xC0FFEE5);
    let mut f = std::fs::File::create(&path).expect("trace file");
    let mut ts = 0u64;
    for i in 0..200 {
        ts += rng.next_below(50);
        let addr = (rng.next_below(2) * 0x1000 + rng.next_below(0xF00)) & !0xF;
        let op = if rng.chance(0.6) { "read" } else { "write" };
        writeln!(f, "{ts} {op} {addr:#x} 4 4 {}", i % 2).unwrap();
    }
    drop(f);

    let spec = ScenarioSpec::new()
        .initiator(InitiatorSpec::new(
            "replay",
            SocketSpec::Ocp {
                threads: 2,
                per_thread: 4,
            },
            TraceSpec::new(path.to_str().expect("utf-8 temp path")),
        ))
        .initiator(InitiatorSpec::new(
            "dma",
            SocketSpec::Ahb,
            vec![
                SocketCommand::write(0x2000, 4, 0xD5),
                SocketCommand::read(0x2040, 4).with_delay(9),
            ],
        ))
        .memory(MemorySpec::new("m0", 0x0, 0x1000, 2))
        .memory(MemorySpec::new("m1", 0x1000, 0x2000, 4))
        .memory(MemorySpec::new("m2", 0x2000, 0x3000, 3))
        .with_topology(noc_scenario::TopologySpec::Mesh {
            width: 3,
            height: 2,
        });

    let reference = run_noc_observable(&spec, StepMode::Dense);
    assert!(reference.0, "dense trace replay must drain");
    for threads in [2, 4] {
        let sharded = run_noc_observable(&spec, StepMode::Sharded { threads });
        assert_eq!(
            reference, sharded,
            "sharded({threads}) trace replay diverges"
        );
    }

    // Snapshot/restore under sharding: stop a sharded run mid-flight,
    // fork it, and finish both; each must land exactly on the
    // single-thread run's records.
    let mid = (reference.1 / 2).max(1);
    let mut sim = spec.build(&Backend::noc()).expect("trace spec builds");
    let stopped = sim.run_until_with(mid, StepMode::Sharded { threads: 3 });
    assert!(!stopped, "the run must still be in flight at cycle {mid}");
    let mut fork = sim.snapshot();
    assert!(sim.run_until_with(3_000_000, StepMode::Sharded { threads: 3 }));
    assert!(fork.run_until(3_000_000), "forked run must drain");
    for (tag, finished) in [("original", &sim), ("fork", &fork)] {
        let logs: Vec<Vec<noc_protocols::CompletionRecord>> = finished
            .logs()
            .iter()
            .map(|(_, log)| log.records().to_vec())
            .collect();
        assert_eq!(
            reference.2, logs,
            "{tag}: sharded snapshot run diverges from the dense reference"
        );
        assert_eq!(reference.1, finished.now(), "{tag}: finish cycle differs");
    }
}

/// Epoch-order invariance of the overlapped runner: the single-barrier
/// protocol `StepMode::Sharded` drives (mailboxes published on send,
/// per-region feeder refill inside the workers) must stay record- and
/// counter-identical both to single-thread dense stepping and to the
/// barrier-integrated reference runner it replaced
/// ([`noc_scenario::NocSim::run_until_barrier`]: serial integration and
/// refill under the barrier) — for region counts 2, 4 and 7, a prime
/// count included so bands never align with the topology.
#[test]
fn overlapped_sharding_matches_dense_and_the_barrier_reference() {
    use noc_scenario::{Simulation, StepMode};

    let mut rng = SplitMix64::new(0xB0A7ED);
    for case in 0..8 {
        let spec = if case % 2 == 0 {
            let clocked = rng.chance(0.4);
            arb_scenario(&mut rng, clocked)
        } else {
            arb_stochastic_scenario(&mut rng)
        };
        let dense = run_noc_observable(&spec, StepMode::Dense);
        assert!(dense.0, "case {case}: dense must drain");
        for threads in [2, 4, 7] {
            let overlapped = run_noc_observable(&spec, StepMode::Sharded { threads });
            assert_eq!(
                dense, overlapped,
                "case {case}: overlapped sharded({threads}) diverges from dense"
            );
            let mut sim = spec
                .build_noc(noc_system::NocConfig::new())
                .expect("valid spec");
            let drained = sim.run_until_barrier(3_000_000, threads);
            let logs: Vec<Vec<noc_protocols::CompletionRecord>> = sim
                .logs()
                .iter()
                .map(|(_, log)| log.records().to_vec())
                .collect();
            let r = sim.report();
            let counters = format!(
                "cycles={} done={} fabric={:?} masters={:?}",
                r.cycles, r.all_done, r.fabric, r.masters
            );
            let barrier = (drained, sim.now(), logs, counters);
            assert_eq!(
                dense, barrier,
                "case {case}: barrier-integrated oracle({threads}) diverges from dense"
            );
        }
    }
}
