//! Event-horizon stepping: the in-flight equivalence and step-collapse
//! suite.
//!
//! PR 2 made quiescent *gaps* skippable but fell back to dense per-cycle
//! polling the moment any flit was in flight. These tests pin the next
//! level: per-layer `next_event_at` horizons skip time *through*
//! in-flight traffic — deep pipelined link crossings, CDC synchronisers,
//! memory service windows, bridge pipeline stamps — while every log
//! record (timestamps included) and every statistics counter stays
//! bit-identical to dense stepping.

use noc_protocols::{CompletionRecord, SocketCommand};
use noc_scenario::{
    parse_document, Backend, Document, InitiatorSpec, MemorySpec, NocConfigSpec, ScenarioSpec,
    SocketSpec, StepMode, TopologySpec,
};
use noc_transaction::BurstKind;
use std::path::PathBuf;

fn corpus(file: &str) -> String {
    let path = PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("../../tests/scenarios")
        .join(file);
    std::fs::read_to_string(&path).unwrap_or_else(|e| panic!("{}: {e}", path.display()))
}

/// Everything a run can observe: drain flag, final cycle, per-master
/// records (timestamps included), and the backend-neutral report's
/// counters (fabric statistics included on the NoC). Executed steps are
/// returned separately — they are the one thing *allowed* to differ.
struct Observed {
    compared: (bool, u64, Vec<Vec<CompletionRecord>>, Vec<u64>),
    fabric: Option<noc_system::FabricReport>,
    steps: u64,
}

fn observe(spec: &ScenarioSpec, backend: &Backend, mode: StepMode) -> Observed {
    let mut sim = spec.build(backend).expect("spec compiles");
    let drained = sim.run_until_with(5_000_000, mode);
    let logs: Vec<Vec<CompletionRecord>> = sim
        .logs()
        .iter()
        .map(|(_, log)| log.records().to_vec())
        .collect();
    let report = sim.report();
    let master_counters: Vec<u64> = report
        .masters
        .iter()
        .flat_map(|m| [m.completions as u64, m.errors as u64])
        .collect();
    Observed {
        compared: (drained, sim.now(), logs, master_counters),
        fabric: report.fabric,
        steps: sim.executed_steps(),
    }
}

/// Runs dense and horizon, asserts bit-identical observables, and
/// returns the (dense, horizon) executed-step counts.
fn assert_equivalent(spec: &ScenarioSpec, backend: &Backend, label: &str) -> (u64, u64) {
    let dense = observe(spec, backend, StepMode::Dense);
    let horizon = observe(spec, backend, StepMode::Horizon);
    assert!(dense.compared.0, "{label}: dense must drain");
    assert_eq!(
        dense.compared, horizon.compared,
        "{label}: logs/counters diverge between dense and horizon"
    );
    assert_eq!(
        dense.fabric, horizon.fabric,
        "{label}: fabric statistics diverge between dense and horizon"
    );
    (dense.steps, horizon.steps)
}

/// The acceptance bar of the event-horizon refactor: on the deep-pipeline
/// corpus scenario, horizon mode executes at least 3x fewer steps than
/// dense on the NoC *and* the bridged backend — neither
/// `Soc::next_activity` nor the bridged `next_activity` may answer
/// `Some(now)` merely because traffic is in flight — while records,
/// timestamps and statistics counters stay bit-identical.
#[test]
fn deep_pipeline_collapses_steps_at_least_3x_on_noc_and_bridged() {
    let text = corpus("deep_pipeline.scn");
    let spec = ScenarioSpec::from_text(&text).expect("corpus parses");
    for backend in [Backend::noc(), Backend::bridged()] {
        let (dense, horizon) = assert_equivalent(&spec, &backend, "deep_pipeline");
        assert!(
            horizon.saturating_mul(3) <= dense,
            "{backend}: horizon executed {horizon} steps vs dense {dense} — \
             in-flight traffic is still forcing (near-)dense stepping"
        );
    }
}

/// The bridged backend's horizon is derived from its sub-request
/// `eligible_at`, slave `busy_until` and parent `respond_at` stamps; it
/// must agree record-for-record with dense stepping on the target-socket
/// corpus (AXI slave + register/service blocks) and the exclusive/locked
/// sweeps, and it must actually skip (strictly fewer steps).
#[test]
fn bridged_horizon_matches_dense_on_services_and_exclusive_corpus() {
    let mut specs: Vec<(String, ScenarioSpec)> = Vec::new();
    match parse_document(&corpus("services.scn")).expect("services.scn parses") {
        Document::Scenario(spec) => specs.push(("services".into(), spec)),
        Document::Sweep(_) => panic!("services.scn is a scenario file"),
    }
    match parse_document(&corpus("exclusive_locks.scn")).expect("exclusive_locks.scn parses") {
        Document::Sweep(sweep) => {
            for p in sweep.points() {
                specs.push((format!("exclusive_locks/{}", p.label), p.spec.clone()));
            }
        }
        Document::Scenario(_) => panic!("exclusive_locks.scn is a sweep file"),
    }
    for (label, spec) in &specs {
        let (dense, horizon) = assert_equivalent(spec, &Backend::bridged(), label);
        assert!(
            horizon < dense,
            "{label}: bridged horizon executed {horizon} steps vs dense {dense} — \
             no skip happened at all"
        );
    }
}

/// Back-to-back traffic over deep pipelined links and slow memories:
/// there is no quiescent gap anywhere — every skipped cycle is *inside*
/// an in-flight transaction — and the equivalence must hold on every
/// backend across pipeline depths, including the switch/endpoint
/// link-class split.
#[test]
fn horizon_equals_dense_while_traffic_is_in_flight() {
    for (pipeline, endpoint_pipeline, latency) in
        [(0u32, None, 1u32), (5, Some(1), 7), (16, Some(3), 12)]
    {
        let cpu: Vec<SocketCommand> = (0..10)
            .flat_map(|i| {
                vec![
                    SocketCommand::write(0x40 * i, 4, 0xF00 + i),
                    SocketCommand::read(0x40 * i, 4).with_burst(BurstKind::Incr, 2),
                ]
            })
            .collect();
        let dma: Vec<SocketCommand> = (0..8)
            .map(|i| SocketCommand::read(0x1000 + 0x20 * i, 4))
            .collect();
        let mut config = NocConfigSpec::new()
            .with_link_pipeline(pipeline)
            .with_link_capacity(64);
        config.endpoint.pipeline = endpoint_pipeline;
        let spec = ScenarioSpec::new()
            .initiator(InitiatorSpec::new("cpu", SocketSpec::Ahb, cpu))
            .initiator(InitiatorSpec::new("dma", SocketSpec::bvci(), dma))
            .memory(MemorySpec::new("m0", 0x0, 0x1000, latency))
            .memory(MemorySpec::new("m1", 0x1000, 0x2000, latency))
            .with_topology(TopologySpec::Mesh {
                width: 2,
                height: 2,
            })
            .with_config(config);
        for backend in [Backend::noc(), Backend::bridged(), Backend::bus()] {
            assert_equivalent(&spec, &backend, &format!("pipeline={pipeline}"));
        }
    }
}

/// CDC crossings under horizon stepping: divided endpoint clocks with a
/// deep synchroniser and pipelined links (NoC only — baselines reject
/// divided clocks). The horizon must land exactly on destination-clock
/// edges or the skip would reorder deliveries.
#[test]
fn horizon_equals_dense_through_cdc_crossings() {
    let cpu: Vec<SocketCommand> = (0..12)
        .map(|i| {
            if i % 3 == 0 {
                SocketCommand::write(0x40 * i, 4, 0xCDC + i)
            } else {
                SocketCommand::read(0x40 * i, 4)
            }
        })
        .collect();
    let mut config = NocConfigSpec::new()
        .with_link_pipeline(7)
        .with_cdc_latency(4);
    config.endpoint.pipeline = Some(2);
    let spec = ScenarioSpec::new()
        .initiator(InitiatorSpec::new("cpu", SocketSpec::Ahb, cpu).with_clock_divisor(2))
        .memory(MemorySpec::new("mem", 0x0, 0x1000, 6).with_clock_divisor(3))
        .with_config(config);
    let (dense, horizon) = assert_equivalent(&spec, &Backend::noc(), "cdc");
    assert!(
        horizon < dense,
        "CDC crossings must still skip ({horizon} vs {dense})"
    );
}

/// An idle switch pinned by a locked sequence accrues `lock_idle_cycles`
/// every cycle; horizon stepping bulk-accounts them on skips. The locked
/// corpus sweep point runs a READEX/LOCK neighbour against a bystander,
/// so the counter is hot — it must come out bit-identical (covered by
/// the fabric-report comparison) on the NoC backend.
#[test]
fn lock_idle_statistics_survive_bulk_skip_accounting() {
    let Document::Sweep(sweep) =
        parse_document(&corpus("exclusive_locks.scn")).expect("exclusive_locks.scn parses")
    else {
        panic!("exclusive_locks.scn is a sweep file");
    };
    let locked = sweep
        .points()
        .iter()
        .find(|p| p.label == "locked")
        .expect("locked sweep point exists");
    let dense = observe(&locked.spec, &Backend::noc(), StepMode::Dense);
    let horizon = observe(&locked.spec, &Backend::noc(), StepMode::Horizon);
    assert_eq!(dense.compared, horizon.compared, "locked scheme diverges");
    let (df, hf) = (
        dense.fabric.expect("noc fabric report"),
        horizon.fabric.expect("noc fabric report"),
    );
    assert_eq!(df, hf, "fabric counters diverge under lock pinning");
    assert!(
        df.lock_idle_cycles > 0,
        "the locked scheme must actually exercise lock-idle accounting"
    );
}
