//! Snapshot/restore determinism: checkpointing a simulation mid-run and
//! continuing — the original, the snapshot, either — must reproduce an
//! uninterrupted run record for record, timestamps and counters
//! included, on every backend and in both step modes. This is the
//! contract the serve layer's warm-state forking rests on.

use noc_protocols::CompletionRecord;
use noc_scenario::{Backend, ScenarioSpec, Simulation, StepMode};

/// A mixed-protocol scenario every backend can compile: no divided
/// clocks, no service or exclusive targets.
fn spec() -> ScenarioSpec {
    let text = "\
[topology]
kind = \"mesh\"
width = 2
height = 2

[[initiator]]
name = \"cpu\"
socket = \"axi\"
cmd = \"read 0x1000 4x8\"
cmd = \"write 0x2000 4x8 delay=3\"
cmd = \"read 0x1100 2x4 stream=1\"

[[initiator]]
name = \"dsp\"
socket = \"ocp\"
cmd = \"write 0x2100 6x4 delay=1\"
cmd = \"read 0x1200 3x8\"

[[memory]]
name = \"dram\"
base = 0x0
end = 0x2000
latency = 6
queue = 2

[[memory]]
name = \"sram\"
base = 0x2000
end = 0x4000
latency = 2
queue = 4
";
    ScenarioSpec::from_text(text).expect("fixture parses")
}

const BUDGET: u64 = 100_000;

/// Everything two runs must agree on to count as identical.
#[derive(Debug, PartialEq)]
struct Trace {
    now: u64,
    steps: u64,
    logs: Vec<(String, Vec<CompletionRecord>)>,
    report: String,
}

fn trace(sim: &dyn Simulation) -> Trace {
    Trace {
        now: sim.now(),
        steps: sim.executed_steps(),
        logs: sim
            .logs()
            .iter()
            .map(|(name, log)| ((*name).to_owned(), log.records().to_vec()))
            .collect(),
        report: format!("{:?}", sim.report()),
    }
}

fn backends() -> [Backend; 3] {
    [Backend::noc(), Backend::bridged(), Backend::bus()]
}

#[test]
fn interrupted_runs_match_uninterrupted_runs() {
    for backend in backends() {
        for mode in [StepMode::Dense, StepMode::Horizon] {
            let label = format!("{} / {mode:?}", backend.label());

            // Reference: one uninterrupted run.
            let mut reference = spec().build(&backend).expect("fixture compiles");
            assert!(reference.run_until_with(BUDGET, mode), "{label}: drains");
            let expected = trace(reference.as_ref());
            assert!(expected.now > 4, "{label}: long enough to interrupt");

            // Interrupted: pause mid-run, snapshot, continue BOTH the
            // original and the restored copy to completion.
            let mid = expected.now / 2;
            let mut original = spec().build(&backend).expect("fixture compiles");
            assert!(
                !original.run_until_with(mid, mode),
                "{label}: not yet drained at cycle {mid}"
            );
            let mut restored = original.snapshot();
            assert_eq!(
                trace(original.as_ref()),
                trace(restored.as_ref()),
                "{label}: a snapshot is the state it was taken from"
            );
            assert!(original.run_until_with(BUDGET, mode), "{label}: drains");
            assert!(restored.run_until_with(BUDGET, mode), "{label}: drains");
            assert_eq!(
                trace(original.as_ref()),
                expected,
                "{label}: continuing past a checkpoint must not disturb the run"
            );
            assert_eq!(
                trace(restored.as_ref()),
                expected,
                "{label}: a restored checkpoint must replay the identical future"
            );
        }
    }
}

#[test]
fn snapshots_are_independent_copies() {
    for backend in backends() {
        let label = backend.label();
        let mut sim = spec().build(&backend).expect("fixture compiles");
        assert!(!sim.run_until_with(5, StepMode::Dense), "{label}");
        let frozen = sim.snapshot();
        let at_freeze = trace(frozen.as_ref());
        // Running the parent on must not leak into the snapshot.
        assert!(sim.run_until_with(BUDGET, StepMode::Dense), "{label}");
        assert_eq!(
            trace(frozen.as_ref()),
            at_freeze,
            "{label}: snapshot mutated by its parent's progress"
        );
        assert_ne!(
            trace(sim.as_ref()),
            at_freeze,
            "{label}: parent visibly advanced past the checkpoint"
        );
    }
}

#[test]
fn program_loading_equals_building_with_programs() {
    // The serve-layer fork in miniature: a programless platform,
    // snapshotted and fed the real programs, must be indistinguishable
    // from building the full spec directly.
    let full = spec();
    for backend in backends() {
        let label = backend.label();
        let platform = full
            .without_programs()
            .build(&backend)
            .expect("fixture compiles");
        let mut forked = platform.snapshot();
        forked.load_programs(&full.programs());
        let mut direct = full.build(&backend).expect("fixture compiles");
        assert!(forked.run_until_with(BUDGET, StepMode::Horizon), "{label}");
        assert!(direct.run_until_with(BUDGET, StepMode::Horizon), "{label}");
        assert_eq!(
            trace(forked.as_ref()),
            trace(direct.as_ref()),
            "{label}: forked platform diverged from a direct build"
        );
    }
}

/// A scenario mixing all three streamed program kinds — bursty, zipf
/// and trace replay — so checkpoints must capture generator RNG state
/// and the trace cursor's file position.
fn stochastic_spec() -> ScenarioSpec {
    use noc_scenario::{BurstySpec, InitiatorSpec, MemorySpec, SocketSpec, TraceSpec, ZipfSpec};
    use std::io::Write;

    let dir = std::env::temp_dir().join("noc-scenario-snapshot-trace");
    std::fs::create_dir_all(&dir).expect("temp dir");
    let path = dir.join("snapshot.trace");
    let mut f = std::fs::File::create(&path).expect("trace file");
    let mut rng = noc_kernel::SplitMix64::new(0x5A17);
    let mut ts = 0u64;
    for _ in 0..150 {
        ts += rng.next_below(25);
        let addr = (rng.next_below(2) * 0x1000 + rng.next_below(0xF00)) & !0x7;
        let op = if rng.chance(0.5) { "read" } else { "write" };
        writeln!(f, "{ts} {op} {addr:#x} 2 4").unwrap();
    }
    drop(f);

    let mut bursty = BurstySpec::new(0xB07, 120, 4, 40);
    bursty.shape.streams = 2;
    bursty.shape.gap = 3;
    let zipf = ZipfSpec::new(0x21F, 150, 1200);
    ScenarioSpec::new()
        .initiator(InitiatorSpec::new(
            "burst",
            SocketSpec::Ocp {
                threads: 2,
                per_thread: 4,
            },
            bursty,
        ))
        .initiator(InitiatorSpec::new(
            "hot",
            SocketSpec::Axi {
                tags: 4,
                per_id: 2,
                total: 8,
            },
            zipf,
        ))
        .initiator(InitiatorSpec::new(
            "replay",
            SocketSpec::Ahb,
            TraceSpec::new(path.to_str().expect("utf-8 temp path")),
        ))
        .memory(MemorySpec::new("dram", 0x0, 0x1000, 5).with_queue(2))
        .memory(MemorySpec::new("sram", 0x1000, 0x2000, 2).with_queue(4))
}

/// Snapshotting mid-burst — generators part-way through their RNG
/// streams, the trace cursor part-way through its file — and
/// continuing must replay exactly the uninterrupted run's records on
/// every backend and in both step modes.
#[test]
fn stochastic_interrupted_runs_match_uninterrupted_runs() {
    let spec = stochastic_spec();
    for backend in backends() {
        for mode in [StepMode::Dense, StepMode::Horizon] {
            let label = format!("{} / {mode:?} (stochastic)", backend.label());

            let mut reference = spec.build(&backend).expect("fixture compiles");
            assert!(reference.run_until_with(BUDGET, mode), "{label}: drains");
            let expected = trace(reference.as_ref());

            let mid = expected.now / 2;
            let mut original = spec.build(&backend).expect("fixture compiles");
            assert!(
                !original.run_until_with(mid, mode),
                "{label}: not yet drained at cycle {mid}"
            );
            let mut restored = original.snapshot();
            assert_eq!(
                trace(original.as_ref()),
                trace(restored.as_ref()),
                "{label}: a snapshot is the state it was taken from"
            );
            assert!(original.run_until_with(BUDGET, mode), "{label}: drains");
            assert!(restored.run_until_with(BUDGET, mode), "{label}: drains");
            assert_eq!(
                trace(original.as_ref()),
                expected,
                "{label}: continuing past a mid-burst checkpoint must not disturb the run"
            );
            assert_eq!(
                trace(restored.as_ref()),
                expected,
                "{label}: a restored mid-burst checkpoint must replay the identical future"
            );
        }
    }
}

/// The serve-layer warm start for generated programs: a programless
/// platform checkpoint fed stochastic workloads through
/// `load_programs` must be bit-identical to a cold build of the full
/// spec — the warm-vs-cold contract behind the checkpoint cache.
#[test]
fn stochastic_program_loading_equals_building_with_programs() {
    let full = stochastic_spec();
    for backend in backends() {
        let label = format!("{} (stochastic)", backend.label());
        let platform = full
            .without_programs()
            .build(&backend)
            .expect("fixture compiles");
        let mut forked = platform.snapshot();
        forked.load_programs(&full.programs());
        let mut direct = full.build(&backend).expect("fixture compiles");
        assert!(forked.run_until_with(BUDGET, StepMode::Horizon), "{label}");
        assert!(direct.run_until_with(BUDGET, StepMode::Horizon), "{label}");
        assert_eq!(
            trace(forked.as_ref()),
            trace(direct.as_ref()),
            "{label}: warm-forked stochastic workloads diverged from a cold build"
        );
    }
}
