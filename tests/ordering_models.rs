//! Paper §3 ordering-model integration: one fabric simultaneously carries
//! fully-ordered, threaded and ID-based masters; each keeps exactly its
//! own contract, and the outstanding-capacity knob trades throughput for
//! gate count.

use noc_area::{niu_gates, NiuAreaConfig};
use noc_niu::fe::{AhbInitiator, AxiInitiator, OcpInitiator};
use noc_niu::{InitiatorNiu, InitiatorNiuConfig, MemoryTarget, TargetNiu, TargetNiuConfig};
use noc_protocols::ahb::AhbMaster;
use noc_protocols::axi::AxiMaster;
use noc_protocols::checker::{check_ahb_order, check_axi_order, check_ocp_order};
use noc_protocols::ocp::OcpMaster;
use noc_protocols::{MemoryModel, Program, ProtocolKind, SocketCommand};
use noc_system::{NocConfig, Soc, SocBuilder};
use noc_topology::Topology;
use noc_transaction::{AddressMap, MstAddr, OrderingModel, SlvAddr, StreamId};

/// Two targets with very different latencies: the classic source of
/// response reordering.
const FAST: (u64, u64) = (0x0000, 0x1000);
const SLOW: (u64, u64) = (0x1000, 0x2000);

fn map() -> AddressMap {
    let mut m = AddressMap::new();
    m.add(FAST.0, FAST.1, SlvAddr::new(1)).unwrap();
    m.add(SLOW.0, SLOW.1, SlvAddr::new(2)).unwrap();
    m
}

/// Alternating slow/fast reads, spread over `streams`.
fn alternating(n: usize, streams: u16) -> Program {
    (0..n)
        .map(|i| {
            let addr = if i % 2 == 0 { SLOW.0 } else { FAST.0 } + (i as u64 * 4) % 0x800;
            SocketCommand::read(addr, 4).with_stream(StreamId::new(i as u16 % streams))
        })
        .collect()
}

fn build_soc(endpoint: Box<dyn noc_niu::NocEndpoint>) -> Soc {
    let topo = Topology::crossbar(3);
    let fast = TargetNiu::new(
        MemoryTarget::new(MemoryModel::new(1), 8),
        TargetNiuConfig::new(SlvAddr::new(1)),
    );
    let slow = TargetNiu::new(
        MemoryTarget::new(MemoryModel::new(30), 8),
        TargetNiuConfig::new(SlvAddr::new(2)),
    );
    SocBuilder::new(topo, NocConfig::new())
        .initiator("m", 0, endpoint)
        .target("fast", 1, Box::new(fast))
        .target("slow", 2, Box::new(slow))
        .build()
        .expect("valid wiring")
}

#[test]
fn fully_ordered_master_stays_ordered_across_targets() {
    let niu = InitiatorNiu::new(
        AhbInitiator::new(AhbMaster::new(alternating(12, 1))),
        InitiatorNiuConfig::new(MstAddr::new(0)).with_outstanding(4),
        map(),
    );
    let mut soc = build_soc(Box::new(niu));
    let report = soc.run(1_000_000);
    assert!(report.all_done);
    let (_, log) = soc.completion_logs()[0];
    assert!(check_ahb_order(log).is_ok(), "AHB never reorders");
    let order: Vec<usize> = log.records().iter().map(|r| r.index).collect();
    assert_eq!(order, (0..12).collect::<Vec<_>>());
}

#[test]
fn threaded_master_reorders_across_threads_only() {
    let niu = InitiatorNiu::new(
        OcpInitiator::new(OcpMaster::new(alternating(12, 2), 2, 2)),
        InitiatorNiuConfig::new(MstAddr::new(0))
            .with_ordering(OrderingModel::Threaded { threads: 2 })
            .with_outstanding(4),
        map(),
    );
    let mut soc = build_soc(Box::new(niu));
    let report = soc.run(1_000_000);
    assert!(report.all_done);
    let (_, log) = soc.completion_logs()[0];
    assert!(check_ocp_order(log).is_ok(), "per-thread order holds");
    assert!(
        check_ahb_order(log).is_err(),
        "threads to fast/slow targets must visibly reorder"
    );
}

#[test]
fn id_based_master_reorders_across_ids_only() {
    let niu = InitiatorNiu::new(
        AxiInitiator::new(AxiMaster::new(alternating(12, 4), 2, 8)),
        InitiatorNiuConfig::new(MstAddr::new(0))
            .with_ordering(OrderingModel::IdBased { tags: 4 })
            .with_outstanding(8),
        map(),
    );
    let mut soc = build_soc(Box::new(niu));
    let report = soc.run(1_000_000);
    assert!(report.all_done);
    let (_, log) = soc.completion_logs()[0];
    assert!(check_axi_order(log).is_ok(), "per-ID order holds");
    assert!(
        check_ahb_order(log).is_err(),
        "IDs to fast/slow targets must visibly reorder"
    );
}

#[test]
fn outstanding_budget_trades_cycles_for_gates() {
    // Sweep the AXI NIU's outstanding budget; completion time must fall
    // (until saturation) while the area model rises — the paper's "scale
    // gate count to expected performance".
    let mut cycles = Vec::new();
    let mut gates = Vec::new();
    for outstanding in [1u32, 2, 4, 8] {
        let niu = InitiatorNiu::new(
            AxiInitiator::new(AxiMaster::new(alternating(16, 4), outstanding, outstanding)),
            InitiatorNiuConfig::new(MstAddr::new(0))
                .with_ordering(OrderingModel::IdBased { tags: 4 })
                .with_outstanding(outstanding),
            map(),
        );
        let mut soc = build_soc(Box::new(niu));
        let report = soc.run(1_000_000);
        assert!(report.all_done);
        cycles.push(report.cycles);
        gates.push(niu_gates(&NiuAreaConfig::new(ProtocolKind::Axi, outstanding)).total());
    }
    assert!(
        cycles[0] > cycles[2],
        "more outstanding => faster: {cycles:?}"
    );
    assert!(
        gates.windows(2).all(|w| w[0] < w[1]),
        "more outstanding => more gates: {gates:?}"
    );
}

#[test]
fn mixed_masters_share_one_fabric() {
    // All three ordering models on one crossbar at once.
    let topo = Topology::crossbar(5);
    let mut m = AddressMap::new();
    m.add(FAST.0, FAST.1, SlvAddr::new(3)).unwrap();
    m.add(SLOW.0, SLOW.1, SlvAddr::new(4)).unwrap();
    let ahb = InitiatorNiu::new(
        AhbInitiator::new(AhbMaster::new(alternating(10, 1))),
        InitiatorNiuConfig::new(MstAddr::new(0)).with_outstanding(2),
        m.clone(),
    );
    let ocp = InitiatorNiu::new(
        OcpInitiator::new(OcpMaster::new(alternating(10, 2), 2, 2)),
        InitiatorNiuConfig::new(MstAddr::new(1))
            .with_ordering(OrderingModel::Threaded { threads: 2 })
            .with_outstanding(4),
        m.clone(),
    );
    let axi = InitiatorNiu::new(
        AxiInitiator::new(AxiMaster::new(alternating(10, 4), 2, 8)),
        InitiatorNiuConfig::new(MstAddr::new(2))
            .with_ordering(OrderingModel::IdBased { tags: 4 })
            .with_outstanding(8),
        m,
    );
    let fast = TargetNiu::new(
        MemoryTarget::new(MemoryModel::new(1), 8),
        TargetNiuConfig::new(SlvAddr::new(3)),
    );
    let slow = TargetNiu::new(
        MemoryTarget::new(MemoryModel::new(30), 8),
        TargetNiuConfig::new(SlvAddr::new(4)),
    );
    let mut soc = SocBuilder::new(topo, NocConfig::new())
        .initiator("ahb", 0, Box::new(ahb))
        .initiator("ocp", 1, Box::new(ocp))
        .initiator("axi", 2, Box::new(axi))
        .target("fast", 3, Box::new(fast))
        .target("slow", 4, Box::new(slow))
        .build()
        .expect("valid wiring");
    let report = soc.run(1_000_000);
    assert!(report.all_done, "{report}");
    for (name, log) in soc.completion_logs() {
        match name {
            "ahb" => assert!(check_ahb_order(log).is_ok()),
            "ocp" => assert!(check_ocp_order(log).is_ok()),
            "axi" => assert!(check_axi_order(log).is_ok()),
            _ => unreachable!(),
        }
        assert_eq!(log.len(), 10, "{name}");
    }
}
