//! Paper §3 synchronisation primitives across the fabric: legacy
//! READEX/LOCK pins transport paths and throttles bystanders; the modern
//! exclusive service costs one packet bit and leaves the fabric alone.

use noc_niu::fe::{AhbInitiator, AxiInitiator};
use noc_niu::{InitiatorNiu, InitiatorNiuConfig, MemoryTarget, TargetNiu, TargetNiuConfig};
use noc_protocols::ahb::AhbMaster;
use noc_protocols::axi::AxiMaster;
use noc_protocols::{MemoryModel, Program, SocketCommand};
use noc_system::{NocConfig, Soc, SocBuilder};
use noc_topology::Topology;
use noc_transaction::{AddressMap, MstAddr, Opcode, OrderingModel, RespStatus, SlvAddr, StreamId};

const SEM: u64 = 0x40; // semaphore address
const DATA: (u64, u64) = (0x1000, 0x2000);

fn map() -> AddressMap {
    let mut m = AddressMap::new();
    m.add(0x0, 0x2000, SlvAddr::new(2)).unwrap();
    m
}

/// Background traffic master: plain reads hammering the shared target.
fn background(n: usize) -> Program {
    (0..n)
        .map(|i| SocketCommand::read(DATA.0 + (i as u64 * 16) % 0xE00, 4))
        .collect()
}

fn build(sync_program: Program, bg: Program, sync_is_axi: bool) -> Soc {
    let topo = Topology::crossbar(3);
    let sync_ep: Box<dyn noc_niu::NocEndpoint> = if sync_is_axi {
        Box::new(InitiatorNiu::new(
            AxiInitiator::new(AxiMaster::new(sync_program, 2, 4)),
            InitiatorNiuConfig::new(MstAddr::new(0))
                .with_ordering(OrderingModel::IdBased { tags: 2 })
                .with_outstanding(4),
            map(),
        ))
    } else {
        Box::new(InitiatorNiu::new(
            AhbInitiator::new(AhbMaster::new(sync_program)),
            InitiatorNiuConfig::new(MstAddr::new(0)).with_outstanding(2),
            map(),
        ))
    };
    let bg_ep = InitiatorNiu::new(
        AhbInitiator::new(AhbMaster::new(bg)),
        InitiatorNiuConfig::new(MstAddr::new(1)).with_outstanding(2),
        map(),
    );
    let mem = TargetNiu::new(
        MemoryTarget::new(MemoryModel::new(2), 8),
        TargetNiuConfig::new(SlvAddr::new(2)),
    );
    SocBuilder::new(topo, NocConfig::new())
        .initiator("sync", 0, sync_ep)
        .initiator("bg", 1, Box::new(bg_ep))
        .target("mem", 2, Box::new(mem))
        .build()
        .expect("valid wiring")
}

#[test]
fn exclusive_pair_succeeds_across_fabric() {
    let sync = vec![
        SocketCommand::read(SEM, 4)
            .with_opcode(Opcode::ReadExclusive)
            .with_stream(StreamId::new(0)),
        SocketCommand::write(SEM, 4, 1)
            .with_opcode(Opcode::WriteExclusive)
            .with_stream(StreamId::new(0))
            .with_delay(10),
    ];
    let mut soc = build(sync, background(5), true);
    let report = soc.run(500_000);
    assert!(report.all_done);
    let (_, log) = soc
        .completion_logs()
        .into_iter()
        .find(|(n, _)| *n == "sync")
        .unwrap();
    assert!(
        log.records().iter().all(|r| r.status == RespStatus::ExOkay),
        "{:?}",
        log.records().iter().map(|r| r.status).collect::<Vec<_>>()
    );
}

#[test]
fn competitor_write_breaks_reservation_across_fabric() {
    // The background master writes the semaphore granule between the
    // exclusive read and the exclusive write.
    let sync = vec![
        SocketCommand::read(SEM, 4)
            .with_opcode(Opcode::ReadExclusive)
            .with_stream(StreamId::new(0)),
        SocketCommand::write(SEM, 4, 1)
            .with_opcode(Opcode::WriteExclusive)
            .with_stream(StreamId::new(0))
            .with_delay(300),
    ];
    let bg = vec![SocketCommand::write(SEM + 4, 4, 9).with_delay(50)]; // same 64B granule
    let mut soc = build(sync, bg, true);
    let report = soc.run(500_000);
    assert!(report.all_done);
    let (_, log) = soc
        .completion_logs()
        .into_iter()
        .find(|(n, _)| *n == "sync")
        .unwrap();
    let wx = log.records().iter().find(|r| r.index == 1).unwrap();
    assert_eq!(wx.status, RespStatus::ExFail, "reservation must break");
}

#[test]
fn exclusive_does_not_slow_bystanders() {
    // Background latency with an exclusive-using neighbour ≈ background
    // latency with an idle neighbour (no transport impact).
    let run_bg_latency = |sync: Program| {
        let mut soc = build(sync, background(30), true);
        let report = soc.run(1_000_000);
        assert!(report.all_done);
        report
            .masters
            .iter()
            .find(|m| m.name == "bg")
            .unwrap()
            .mean_latency
    };
    let idle = run_bg_latency(vec![]);
    let excl: Program = (0..10)
        .flat_map(|i| {
            vec![
                SocketCommand::read(SEM, 4)
                    .with_opcode(Opcode::ReadExclusive)
                    .with_stream(StreamId::new(0))
                    .with_delay(i),
                SocketCommand::write(SEM, 4, 1)
                    .with_opcode(Opcode::WriteExclusive)
                    .with_stream(StreamId::new(0)),
            ]
        })
        .collect();
    let with_excl = run_bg_latency(excl);
    assert!(
        with_excl < idle * 2.0,
        "exclusive neighbour must not throttle bystanders: {with_excl:.1} vs idle {idle:.1}"
    );
}

#[test]
fn legacy_lock_throttles_bystanders() {
    // Same comparison but the neighbour uses READEX/LOCK sequences with
    // long hold times: the pinned path visibly inflates background
    // latency and the switches record lock-idle cycles.
    let run = |sync: Program| {
        let mut soc = build(sync, background(30), false);
        let report = soc.run(1_000_000);
        assert!(report.all_done, "{report}");
        let bg = report
            .masters
            .iter()
            .find(|m| m.name == "bg")
            .unwrap()
            .mean_latency;
        (bg, report.fabric.lock_idle_cycles)
    };
    let (idle_lat, _) = run(vec![]);
    let locks: Program = (0..10)
        .flat_map(|_| {
            vec![
                SocketCommand::read(SEM, 4).with_opcode(Opcode::ReadLocked),
                // long critical section: unlock delayed
                SocketCommand::write(SEM, 4, 1)
                    .with_opcode(Opcode::WriteUnlock)
                    .with_delay(40),
            ]
        })
        .collect();
    let (locked_lat, lock_idle) = run(locks);
    assert!(
        locked_lat > idle_lat * 1.5,
        "locking neighbour must throttle bystanders: {locked_lat:.1} vs idle {idle_lat:.1}"
    );
    assert!(
        lock_idle > 0,
        "switches must report lock-pinned idle cycles"
    );
}

/// Satellite matrix for declarative targets: interleaved exclusive
/// read/write pairs from two initiators, through both target kinds that
/// accept synchronisation traffic (a plain memory and an exclusive
/// service block), on every backend that models them, in both step
/// modes — asserting exactly one success per contended pair. The NoC
/// decides in target-NIU state, the bus in its central monitor, the
/// bridged crossbar in its crossbar monitor; the verdicts must agree.
#[test]
fn contended_exclusive_pairs_have_exactly_one_winner_everywhere() {
    use noc_scenario::{
        Backend, InitiatorSpec, MemorySpec, ScenarioError, ScenarioSpec, SocketSpec, StepMode,
    };

    const ROUNDS: usize = 3;
    // Delays pin the per-round interleave on every backend: both
    // masters arm (a then b), then a's exclusive write wins and clears
    // b's reservation, so b's write must fail. The 150-cycle stagger
    // dwarfs any backend's transaction latency.
    let pair_program = |first_delay: u32| -> Program {
        (0..ROUNDS as u32)
            .flat_map(|k| {
                vec![
                    SocketCommand::read(SEM, 4)
                        .with_opcode(Opcode::ReadExclusive)
                        .with_delay(if k == 0 { first_delay } else { 300 }),
                    SocketCommand::write(SEM, 4, 1)
                        .with_opcode(Opcode::WriteExclusive)
                        .with_delay(300),
                ]
            })
            .collect()
    };
    let ocp = SocketSpec::Ocp {
        threads: 1,
        per_thread: 1,
    };
    let targets = [
        ("memory", MemorySpec::new("sem", 0x0, 0x1000, 2)),
        (
            "service",
            MemorySpec::service("sem", 0x0, 0x1000, 2, 2).with_exclusive(),
        ),
    ];
    for (kind, sem) in targets {
        let spec = ScenarioSpec::new()
            .initiator(InitiatorSpec::new("a", ocp, pair_program(0)))
            .initiator(InitiatorSpec::new("b", ocp, pair_program(150)))
            .memory(sem);
        for backend in [Backend::noc(), Backend::bridged(), Backend::bus()] {
            for mode in [StepMode::Dense, StepMode::Horizon] {
                let mut sim = match spec.build(&backend) {
                    Ok(sim) => sim,
                    Err(ScenarioError::UnsupportedTarget { .. }) => {
                        // The bus cannot host a target-owned exclusive
                        // port; everything else must compile.
                        assert!(
                            kind == "service" && matches!(backend, Backend::Bus(_)),
                            "only the bus may reject the exclusive service block"
                        );
                        continue;
                    }
                    Err(e) => panic!("{kind}/{backend}: {e}"),
                };
                assert!(
                    sim.run_until_with(1_000_000, mode),
                    "{kind}/{backend}/{mode} must drain"
                );
                // Exclusive-write verdicts per master, in round order
                // (odd program indices are the writes).
                let verdicts: Vec<Vec<RespStatus>> = sim
                    .logs()
                    .iter()
                    .map(|(_, log)| {
                        let mut writes: Vec<(usize, RespStatus)> = log
                            .records()
                            .iter()
                            .filter(|r| r.index % 2 == 1)
                            .map(|r| (r.index, r.status))
                            .collect();
                        writes.sort_unstable_by_key(|w| w.0);
                        writes.into_iter().map(|(_, s)| s).collect()
                    })
                    .collect();
                assert!(verdicts.iter().all(|v| v.len() == ROUNDS));
                for (round, pair) in verdicts[0]
                    .iter()
                    .zip(&verdicts[1])
                    .map(|(a, b)| [*a, *b])
                    .enumerate()
                {
                    assert_eq!(
                        pair.iter().filter(|s| **s == RespStatus::ExOkay).count(),
                        1,
                        "{kind}/{backend}/{mode} round {round}: exactly one \
                         contended exclusive write may win, got {pair:?}"
                    );
                    assert_eq!(
                        pair.iter().filter(|s| **s == RespStatus::ExFail).count(),
                        1,
                        "{kind}/{backend}/{mode} round {round}: the loser must \
                         fail cleanly, got {pair:?}"
                    );
                }
            }
        }
    }
}

#[test]
fn failed_exclusive_write_leaves_memory_untouched_across_fabric() {
    let sync = vec![
        // no reservation armed: must fail cleanly
        SocketCommand::write(SEM, 4, 0xAB)
            .with_opcode(Opcode::WriteExclusive)
            .with_stream(StreamId::new(0)),
        // plain read back: sees background pattern, not 0xAB data
        SocketCommand::read(SEM, 4)
            .with_stream(StreamId::new(1))
            .with_delay(50),
    ];
    let mut soc = build(sync, vec![], true);
    let report = soc.run(500_000);
    assert!(report.all_done);
    let (_, log) = soc
        .completion_logs()
        .into_iter()
        .find(|(n, _)| *n == "sync")
        .unwrap();
    let wx = log.records().iter().find(|r| r.index == 0).unwrap();
    assert_eq!(wx.status, RespStatus::ExFail);
    let rd = log.records().iter().find(|r| r.index == 1).unwrap();
    let attempted = SocketCommand::write(SEM, 4, 0xAB).payload();
    assert_ne!(rd.data, attempted, "failed exclusive write must not land");
}
