//! The paper's Fig 1 system: seven IP blocks speaking AHB, OCP, AXI,
//! STRM, PVCI, BVCI and AVCI all plugged into one NoC — then the same
//! programs replayed on the Fig-2 bridged interconnect and a shared bus.
//!
//! Run with: `cargo run -p noc-examples --example mixed_protocol_soc`

use noc_baseline::Interconnect;
use noc_workloads::{SetTop, SetTopConfig};

fn main() {
    let cfg = SetTopConfig::new(24, 2005);
    let scenario = SetTop::new(cfg);

    println!("== Fig 1: mixed-protocol SoC on the NoC ==");
    let mut soc = scenario.build_noc();
    let report = soc.run(2_000_000);
    println!("{report}");
    assert!(report.all_done);

    println!("\n== Fig 2: same SoC on the bridged reference-socket interconnect ==");
    let mut bridged = scenario.build_bridged();
    bridged.run(5_000_000);
    println!("finished at cycle {}", bridged.now());
    for (log, name) in bridged.logs().iter().zip([
        "cpu(AHB)", "video(OCP)", "dma(AXI)", "display(STRM)", "ctrl(PVCI)", "io(BVCI)", "acc(AVCI)",
    ]) {
        println!("  {name}: {} done, mean {:.1}cy", log.len(), log.mean_latency());
    }

    println!("\n== Shared bus ==");
    let mut bus = scenario.build_bus();
    bus.run(5_000_000);
    println!("finished at cycle {}", bus.now());

    println!(
        "\nmakespans: NoC {} < bridged {} < bus {}",
        report.cycles,
        bridged.now(),
        bus.now()
    );
}
