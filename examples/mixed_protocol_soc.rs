//! The paper's Fig 1 system: seven IP blocks speaking AHB, OCP, AXI,
//! STRM, PVCI, BVCI and AVCI all plugged into one NoC — then the same
//! declarative spec compiled to the Fig-2 bridged interconnect and a
//! shared bus, and driven through the one `Simulation` trait.
//!
//! Run with: `cargo run -p noc-examples --example mixed_protocol_soc`

use noc_scenario::Backend;
use noc_workloads::{SetTop, SetTopConfig};

fn main() {
    let cfg = SetTopConfig::new(24, 2005);
    let spec = SetTop::new(cfg).spec();

    let mut makespans = Vec::new();
    for (title, backend) in [
        (
            "Fig 1: mixed-protocol SoC on the NoC",
            Backend::Noc(cfg.noc),
        ),
        (
            "Fig 2: same spec on the bridged reference-socket interconnect",
            Backend::Bridged(cfg.bridge),
        ),
        ("Shared bus", Backend::Bus(cfg.bus)),
    ] {
        println!("== {title} ==");
        let mut sim = spec.build(&backend).expect("set-top spec is consistent");
        assert!(sim.run_until(10_000_000), "{backend} must drain");
        let report = sim.report();
        println!("{report}\n");
        makespans.push(report.cycles);
    }

    println!(
        "makespans: NoC {} < bridged {} < bus {}",
        makespans[0], makespans[1], makespans[2]
    );
}
