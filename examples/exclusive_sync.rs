//! Paper §3: non-blocking synchronisation (exclusive access / lazy sync)
//! vs the legacy READEX/LOCK — two masters contending on a semaphore with
//! a third master's traffic as collateral.
//!
//! Run with: `cargo run -p noc-examples --example exclusive_sync`

use noc_protocols::{Program, SocketCommand};
use noc_scenario::{Backend, InitiatorSpec, MemorySpec, ScenarioSpec, SocketSpec};
use noc_transaction::Opcode;

const SEM: u64 = 0x40;

fn run(sync_program: Program, label: &str) {
    let bystander: Program = (0..30)
        .map(|i| SocketCommand::read(0x1000 + i * 16, 4))
        .collect();
    let spec = ScenarioSpec::new()
        .initiator(InitiatorSpec::new("sync", SocketSpec::Ahb, sync_program))
        .initiator(InitiatorSpec::new("bystander", SocketSpec::Ahb, bystander))
        .memory(MemorySpec::new("mem", 0x0, 0x2000, 2));
    let mut sim = spec.build(&Backend::noc()).expect("valid scenario");
    assert!(sim.run_until(1_000_000));
    let report = sim.report();
    let bg_lat = report
        .master("bystander")
        .expect("declared above")
        .mean_latency;
    let lock_idle = report.fabric.expect("NoC backend").lock_idle_cycles;
    println!(
        "{label:>28}: bystander mean latency {bg_lat:6.1} cycles, lock-idle {lock_idle} cycles"
    );
}

fn main() {
    println!("semaphore contention, collateral damage to a bystander master:\n");
    run(Vec::new(), "idle neighbour");
    // Modern: exclusive pairs (one packet bit + NIU state; non-blocking).
    // Note: AHB itself cannot express exclusives, so this program drives
    // the canonical opcodes through the neutral layer directly.
    let exclusive: Program = (0..10)
        .flat_map(|_| {
            vec![
                SocketCommand::read(SEM, 4).with_opcode(Opcode::ReadExclusive),
                SocketCommand::write(SEM, 4, 1).with_opcode(Opcode::WriteExclusive),
            ]
        })
        .collect();
    run(exclusive, "exclusive access (AXI/OCP)");
    // Legacy: READEX/LOCK with a long critical section pins fabric paths.
    let locking: Program = (0..10)
        .flat_map(|_| {
            vec![
                SocketCommand::read(SEM, 4).with_opcode(Opcode::ReadLocked),
                SocketCommand::write(SEM, 4, 1)
                    .with_opcode(Opcode::WriteUnlock)
                    .with_delay(40),
            ]
        })
        .collect();
    run(locking, "legacy READEX/LOCK");
    println!("\nlegacy locking inflates bystander latency; exclusives do not (paper \u{a7}3)");
}
