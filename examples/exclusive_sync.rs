//! Paper §3: non-blocking synchronisation (exclusive access / lazy sync)
//! vs the legacy READEX/LOCK — two masters contending on a semaphore with
//! a third master's traffic as collateral.
//!
//! Run with: `cargo run -p noc-examples --example exclusive_sync`

use noc_niu::fe::AhbInitiator;
use noc_niu::{InitiatorNiu, InitiatorNiuConfig, MemoryTarget, TargetNiu, TargetNiuConfig};
use noc_protocols::ahb::AhbMaster;
use noc_protocols::{MemoryModel, Program, SocketCommand};
use noc_system::{NocConfig, SocBuilder};
use noc_topology::Topology;
use noc_transaction::{AddressMap, MstAddr, Opcode, SlvAddr};

const SEM: u64 = 0x40;

fn map() -> AddressMap {
    let mut m = AddressMap::new();
    m.add(0x0, 0x2000, SlvAddr::new(2)).expect("valid range");
    m
}

fn run(sync_program: Program, label: &str) {
    let sync = InitiatorNiu::new(
        AhbInitiator::new(AhbMaster::new(sync_program)),
        InitiatorNiuConfig::new(MstAddr::new(0)),
        map(),
    );
    let bystander: Program = (0..30)
        .map(|i| SocketCommand::read(0x1000 + i * 16, 4))
        .collect();
    let bg = InitiatorNiu::new(
        AhbInitiator::new(AhbMaster::new(bystander)),
        InitiatorNiuConfig::new(MstAddr::new(1)),
        map(),
    );
    let mem = TargetNiu::new(
        MemoryTarget::new(MemoryModel::new(2), 8),
        TargetNiuConfig::new(SlvAddr::new(2)),
    );
    let mut soc = SocBuilder::new(Topology::crossbar(3), NocConfig::new())
        .initiator("sync", 0, Box::new(sync))
        .initiator("bystander", 1, Box::new(bg))
        .target("mem", 2, Box::new(mem))
        .build()
        .expect("valid wiring");
    let report = soc.run(1_000_000);
    let bg_lat = report
        .masters
        .iter()
        .find(|m| m.name == "bystander")
        .unwrap()
        .mean_latency;
    println!(
        "{label:>28}: bystander mean latency {bg_lat:6.1} cycles, lock-idle {} cycles",
        report.fabric.lock_idle_cycles
    );
}

fn main() {
    println!("semaphore contention, collateral damage to a bystander master:\n");
    run(Vec::new(), "idle neighbour");
    // Modern: exclusive pairs (one packet bit + NIU state; non-blocking).
    // Note: AHB itself cannot express exclusives, so this program drives
    // the canonical opcodes through the neutral layer directly.
    let exclusive: Program = (0..10)
        .flat_map(|_| {
            vec![
                SocketCommand::read(SEM, 4).with_opcode(Opcode::ReadExclusive),
                SocketCommand::write(SEM, 4, 1).with_opcode(Opcode::WriteExclusive),
            ]
        })
        .collect();
    run(exclusive, "exclusive access (AXI/OCP)");
    // Legacy: READEX/LOCK with a long critical section pins fabric paths.
    let locking: Program = (0..10)
        .flat_map(|_| {
            vec![
                SocketCommand::read(SEM, 4).with_opcode(Opcode::ReadLocked),
                SocketCommand::write(SEM, 4, 1)
                    .with_opcode(Opcode::WriteUnlock)
                    .with_delay(40),
            ]
        })
        .collect();
    run(locking, "legacy READEX/LOCK");
    println!("\nlegacy locking inflates bystander latency; exclusives do not (paper \u{a7}3)");
}
