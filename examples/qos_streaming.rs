//! Pressure-based QoS: a latency-critical display stream keeps its
//! latency under heavy DMA interference thanks to the packet `pressure`
//! field — transport-layer QoS invisible to the transaction layer.
//!
//! Run with: `cargo run -p noc-examples --example qos_streaming`

use noc_niu::fe::StrmInitiator;
use noc_niu::{InitiatorNiu, InitiatorNiuConfig, MemoryTarget, TargetNiu, TargetNiuConfig};
use noc_protocols::strm::StrmMaster;
use noc_protocols::{MemoryModel, Program, SocketCommand};
use noc_system::{NocConfig, SocBuilder};
use noc_topology::Topology;
use noc_transaction::{AddressMap, MstAddr, SlvAddr};

fn map() -> AddressMap {
    let mut m = AddressMap::new();
    m.add(0x0, 0x10_0000, SlvAddr::new(3)).expect("valid range");
    m
}

fn run(display_pressure: u8) -> (f64, u64) {
    let display: Program = (0..40)
        .map(|i| {
            SocketCommand::read(0x1000 + i * 64, 8)
                .with_burst(noc_transaction::BurstKind::Incr, 8)
                .with_pressure(display_pressure)
                .with_delay(2)
        })
        .collect();
    let noise: Program = (0..40)
        .map(|i| {
            SocketCommand::write(0x8000 + i * 128, 8, i as u64)
                .with_burst(noc_transaction::BurstKind::Incr, 16)
        })
        .collect();
    let disp = InitiatorNiu::new(
        StrmInitiator::new(StrmMaster::new(display, 4)),
        InitiatorNiuConfig::new(MstAddr::new(0)).with_outstanding(4),
        map(),
    );
    let mk_noise = |node: u16, p: Program| {
        InitiatorNiu::new(
            StrmInitiator::new(StrmMaster::new(p, 4)),
            InitiatorNiuConfig::new(MstAddr::new(node)).with_outstanding(4),
            map(),
        )
    };
    let mem = TargetNiu::new(
        MemoryTarget::new(MemoryModel::new(4), 8),
        TargetNiuConfig::new(SlvAddr::new(3)),
    );
    let mut soc = SocBuilder::new(Topology::crossbar(4), NocConfig::new())
        .initiator("display", 0, Box::new(disp))
        .initiator("dma1", 1, Box::new(mk_noise(1, noise.clone())))
        .initiator("dma2", 2, Box::new(mk_noise(2, noise)))
        .target("mem", 3, Box::new(mem))
        .build()
        .expect("valid wiring");
    let report = soc.run(1_000_000);
    let disp = report
        .masters
        .iter()
        .find(|m| m.name == "display")
        .unwrap();
    (disp.mean_latency, disp.latency_percentile(0.95))
}

fn main() {
    println!("display stream under 2x DMA interference:\n");
    println!("{:>12} | {:>10} | {:>8}", "pressure", "mean (cy)", "p95 (cy)");
    println!("{:->12}-+-{:->10}-+-{:->8}", "", "", "");
    for p in 0..=3u8 {
        let (mean, p95) = run(p);
        println!("{p:>12} | {mean:>10.1} | {p95:>8}");
    }
    println!("\nhigher pressure wins switch arbitration -> lower, tighter latency");
}
