//! Pressure-based QoS: a latency-critical display stream keeps its
//! latency under heavy DMA interference thanks to the packet `pressure`
//! field — transport-layer QoS invisible to the transaction layer.
//!
//! Run with: `cargo run -p noc-examples --example qos_streaming`

use noc_protocols::{Program, SocketCommand};
use noc_scenario::{Backend, InitiatorSpec, MemorySpec, ScenarioSpec, SocketSpec};
use noc_transaction::BurstKind;

const MEM: (u64, u64) = (0x0, 0x10_0000);

fn spec(display_pressure: u8) -> ScenarioSpec {
    let display: Program = (0..40)
        .map(|i| {
            SocketCommand::read(0x1000 + i * 64, 8)
                .with_burst(BurstKind::Incr, 8)
                .with_pressure(display_pressure)
                .with_delay(2)
        })
        .collect();
    let noise: Program = (0..40)
        .map(|i| SocketCommand::write(0x8000 + i * 128, 8, i).with_burst(BurstKind::Incr, 16))
        .collect();
    ScenarioSpec::new()
        .initiator(InitiatorSpec::new("display", SocketSpec::strm(), display).with_outstanding(4))
        .initiator(
            InitiatorSpec::new("dma1", SocketSpec::strm(), noise.clone()).with_outstanding(4),
        )
        .initiator(InitiatorSpec::new("dma2", SocketSpec::strm(), noise).with_outstanding(4))
        .memory(MemorySpec::over("mem", MEM, 4))
}

fn run(display_pressure: u8) -> (f64, u64) {
    let mut sim = spec(display_pressure)
        .build(&Backend::noc())
        .expect("valid scenario");
    assert!(sim.run_until(1_000_000));
    let report = sim.report();
    let disp = report.master("display").expect("declared above");
    (disp.mean_latency, disp.latency_percentile(0.95))
}

fn main() {
    println!("display stream under 2x DMA interference:\n");
    println!(
        "{:>12} | {:>10} | {:>8}",
        "pressure", "mean (cy)", "p95 (cy)"
    );
    println!("{:->12}-+-{:->10}-+-{:->8}", "", "", "");
    for p in 0..=3u8 {
        let (mean, p95) = run(p);
        println!("{p:>12} | {mean:>10.1} | {p95:>8}");
    }
    println!("\nhigher pressure wins switch arbitration -> lower, tighter latency");
}
