//! Quickstart: one AHB CPU reading and writing a memory — the smallest
//! complete use of the declarative scenario API. The same description
//! compiles to the NoC, the bridged interconnect, and a shared bus.
//!
//! Run with: `cargo run -p noc-examples --example quickstart`

use noc_protocols::SocketCommand;
use noc_scenario::{Backend, InitiatorSpec, MemorySpec, ScenarioSpec, SocketSpec};
use noc_transaction::BurstKind;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A program for the AHB master: write a burst, read it back.
    let program = vec![
        SocketCommand::write(0x100, 4, 0xDEAD).with_burst(BurstKind::Incr, 4),
        SocketCommand::read(0x100, 4).with_burst(BurstKind::Incr, 4),
    ];

    // 2. The scenario: one initiator socket, one 4 KiB memory. Node
    //    numbers and the address map are derived from the declaration.
    let spec = ScenarioSpec::new()
        .initiator(InitiatorSpec::new("cpu", SocketSpec::Ahb, program))
        .memory(MemorySpec::new("mem", 0x0, 0x1000, 2));

    // 3. Compile to the NoC backend and run it.
    let mut sim = spec.build(&Backend::noc())?;
    assert!(sim.run_until(10_000));
    let report = sim.report();
    println!("{report}");

    // 4. Inspect the data: the read returned the written bytes.
    let (_, log) = sim.logs()[0];
    assert_eq!(log.records()[0].data, log.records()[1].data);
    println!("read data matches written data — quickstart OK");

    // 5. The identical spec runs on the other interconnects too.
    for backend in [Backend::bridged(), Backend::bus()] {
        let mut sim = spec.build(&backend)?;
        assert!(sim.run_until(100_000));
        println!(
            "{backend}: {} completions",
            sim.report().total_completions()
        );
    }
    Ok(())
}
