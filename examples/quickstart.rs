//! Quickstart: one AHB CPU reading and writing a memory across a minimal
//! NoC — the smallest complete use of the public API.
//!
//! Run with: `cargo run -p noc-examples --example quickstart`

use noc_niu::fe::AhbInitiator;
use noc_niu::{InitiatorNiu, InitiatorNiuConfig, MemoryTarget, TargetNiu, TargetNiuConfig};
use noc_protocols::ahb::AhbMaster;
use noc_protocols::{MemoryModel, SocketCommand};
use noc_system::{NocConfig, SocBuilder};
use noc_topology::Topology;
use noc_transaction::{AddressMap, BurstKind, MstAddr, SlvAddr};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. Address map: one memory target at node 1 owning 4 KiB.
    let mut map = AddressMap::new();
    map.add(0x0, 0x1000, SlvAddr::new(1))?;

    // 2. A program for the AHB master: write a burst, read it back.
    let program = vec![
        SocketCommand::write(0x100, 4, 0xDEAD).with_burst(BurstKind::Incr, 4),
        SocketCommand::read(0x100, 4).with_burst(BurstKind::Incr, 4),
    ];

    // 3. NIUs: AHB front end + neutral back end; native memory target.
    let cpu = InitiatorNiu::new(
        AhbInitiator::new(AhbMaster::new(program)),
        InitiatorNiuConfig::new(MstAddr::new(0)),
        map,
    );
    let mem = TargetNiu::new(
        MemoryTarget::new(MemoryModel::new(2), 4),
        TargetNiuConfig::new(SlvAddr::new(1)),
    );

    // 4. Assemble a 2-endpoint crossbar NoC and run it.
    let mut soc = SocBuilder::new(Topology::crossbar(2), NocConfig::new())
        .initiator("cpu", 0, Box::new(cpu))
        .target("mem", 1, Box::new(mem))
        .build()?;
    let report = soc.run(10_000);
    println!("{report}");
    assert!(report.all_done);

    // 5. Inspect the data: the read returned the written bytes.
    let (_, log) = soc.completion_logs()[0];
    assert_eq!(log.records()[0].data, log.records()[1].data);
    println!("read data matches written data — quickstart OK");
    Ok(())
}
